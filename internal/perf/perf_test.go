package perf

import (
	"strings"
	"testing"

	"ev8pred/internal/frontend"
)

func TestEV8Parameters(t *testing.T) {
	m := EV8()
	if m.CondPenalty != 14 || m.FetchBlocksPerCycle != 2 || m.IssueWidth != 8 {
		t.Errorf("EV8 model = %+v", m)
	}
	if EV8Typical().CondPenalty != 20 {
		t.Error("EV8Typical should use the 20-cycle resolution latency")
	}
}

func TestEstimateNoMispredicts(t *testing.T) {
	m := EV8()
	r := m.Estimate(Inputs{Instructions: 16000, Blocks: 2000})
	// 2000 blocks at 2/cycle = 1000 cycles; 16000 instructions -> IPC
	// would be 16 but is capped at the 8-wide issue limit.
	if r.FetchCycles != 1000 {
		t.Errorf("FetchCycles = %v", r.FetchCycles)
	}
	if r.IPC != 8 {
		t.Errorf("IPC = %v, want issue-width cap 8", r.IPC)
	}
}

func TestEstimateChargesRedirects(t *testing.T) {
	m := EV8()
	in := Inputs{
		Instructions: 8000,
		Blocks:       2000,
		PCGen: frontend.PCGenStats{
			CondMispredicts: 10,
			JumpMispredicts: 5,
			RetMispredicts:  2,
		},
	}
	r := m.Estimate(in)
	want := float64(10+5+2) * 14
	if r.RedirectCycles != want {
		t.Errorf("RedirectCycles = %v, want %v", r.RedirectCycles, want)
	}
	if r.IPC >= 8 {
		t.Error("redirects should pull IPC below the cap")
	}
}

func TestLineSlipsSubsumedByRedirects(t *testing.T) {
	m := EV8()
	in := Inputs{
		Instructions: 1000,
		Blocks:       100,
		PCGen:        frontend.PCGenStats{CondMispredicts: 50},
		LineMisses:   30, // all coincide with redirects
	}
	if r := m.Estimate(in); r.LineCycles != 0 {
		t.Errorf("LineCycles = %v, want 0 (subsumed)", r.LineCycles)
	}
	in.LineMisses = 80 // 30 extra slips
	if r := m.Estimate(in); r.LineCycles != 30*2 {
		t.Errorf("LineCycles = %v, want 60", r.LineCycles)
	}
}

func TestSpeedupAndString(t *testing.T) {
	a := Report{IPC: 4}
	b := Report{IPC: 2}
	if Speedup(a, b) != 2 {
		t.Error("Speedup(4,2) != 2")
	}
	if Speedup(a, Report{}) != 0 {
		t.Error("Speedup with zero base should be 0")
	}
	if !strings.Contains(a.String(), "IPC") {
		t.Errorf("String = %q", a.String())
	}
}

func TestZeroInputs(t *testing.T) {
	var m Model
	r := m.Estimate(Inputs{})
	if r.Cycles != 0 || r.IPC != 0 {
		t.Errorf("zero model/inputs produced %+v", r)
	}
}
