package perf

import (
	"math"
	"strings"
	"testing"

	"ev8pred/internal/frontend"
)

// estimate is the test helper for inputs that must be valid.
func estimate(t *testing.T, m Model, in Inputs) Report {
	t.Helper()
	r, err := m.Estimate(in)
	if err != nil {
		t.Fatalf("Estimate(%+v) failed: %v", in, err)
	}
	return r
}

func TestEV8Parameters(t *testing.T) {
	m := EV8()
	if m.CondPenalty != 14 || m.FetchBlocksPerCycle != 2 || m.IssueWidth != 8 {
		t.Errorf("EV8 model = %+v", m)
	}
	if EV8Typical().CondPenalty != 20 {
		t.Error("EV8Typical should use the 20-cycle resolution latency")
	}
}

// TestIssueWidthIsACycleFloor is the regression for the cap-binding bug:
// the old code clamped IPC at IssueWidth but left Cycles at the
// fetch+redirect sum, so one Report described two different machines.
// When the cap binds, Cycles must rise to Instructions/IssueWidth and IPC
// must be derived from those final Cycles.
func TestIssueWidthIsACycleFloor(t *testing.T) {
	m := EV8()
	r := estimate(t, m, Inputs{Instructions: 16000, Blocks: 2000})
	// Fetch alone: 2000 blocks at 2/cycle = 1000 cycles, which would mean
	// 16 IPC on an 8-wide machine — impossible. The issue-width floor is
	// 16000/8 = 2000 cycles.
	if r.FetchCycles != 1000 {
		t.Errorf("FetchCycles = %v, want 1000", r.FetchCycles)
	}
	if r.IssueCycles != 2000 {
		t.Errorf("IssueCycles = %v, want 2000", r.IssueCycles)
	}
	if r.Cycles != 2000 {
		t.Errorf("Cycles = %v, want the issue-width floor 2000", r.Cycles)
	}
	if r.IPC != 8 {
		t.Errorf("IPC = %v, want issue-width limit 8", r.IPC)
	}
	// The consistency invariant itself: IPC is computed from the Cycles
	// the Report carries, not from the pre-floor sum.
	if got := float64(16000) / r.Cycles; r.IPC != got {
		t.Errorf("IPC = %v inconsistent with Instructions/Cycles = %v", r.IPC, got)
	}
}

// TestCapBindingSpeedupConsistent pins the downstream symptom: Speedup
// between a cap-bound run and a redirect-bound run must equal both the
// IPC ratio and the inverse cycle ratio, because the two are now the same
// quantity.
func TestCapBindingSpeedupConsistent(t *testing.T) {
	m := EV8()
	const instr = 16000
	fast := estimate(t, m, Inputs{Instructions: instr, Blocks: 2000}) // cap binds
	slow := estimate(t, m, Inputs{Instructions: instr, Blocks: 2000,
		PCGen: frontend.PCGenStats{CondMispredicts: 200}}) // 2800 redirect cycles dominate

	if fast.Cycles >= slow.Cycles {
		t.Fatalf("expected redirects to cost cycles: fast %v, slow %v", fast.Cycles, slow.Cycles)
	}
	s := Speedup(fast, slow)
	ipcRatio := fast.IPC / slow.IPC
	cycleRatio := slow.Cycles / fast.Cycles
	if math.Abs(s-ipcRatio) > 1e-12 || math.Abs(s-cycleRatio) > 1e-12 {
		t.Errorf("Speedup = %v, IPC ratio = %v, cycle ratio = %v; all three must agree",
			s, ipcRatio, cycleRatio)
	}
}

func TestEstimateChargesRedirects(t *testing.T) {
	m := EV8()
	in := Inputs{
		Instructions: 8000,
		Blocks:       2000,
		PCGen: frontend.PCGenStats{
			CondMispredicts: 10,
			JumpMispredicts: 5,
			RetMispredicts:  2,
		},
	}
	r := estimate(t, m, in)
	want := float64(10+5+2) * 14
	if r.RedirectCycles != want {
		t.Errorf("RedirectCycles = %v, want %v", r.RedirectCycles, want)
	}
	if r.IPC >= 8 {
		t.Error("redirects should pull IPC below the issue width")
	}
}

func TestLineSlipsSubsumedByRedirects(t *testing.T) {
	m := EV8()
	in := Inputs{
		Instructions: 1000,
		Blocks:       100,
		PCGen:        frontend.PCGenStats{CondMispredicts: 50},
		LineMisses:   30, // all coincide with redirects
	}
	if r := estimate(t, m, in); r.LineCycles != 0 {
		t.Errorf("LineCycles = %v, want 0 (subsumed)", r.LineCycles)
	}
	in.LineMisses = 80 // 30 extra slips
	if r := estimate(t, m, in); r.LineCycles != 30*2 {
		t.Errorf("LineCycles = %v, want 60", r.LineCycles)
	}
}

func TestSpeedupAndString(t *testing.T) {
	a := Report{IPC: 4}
	b := Report{IPC: 2}
	if Speedup(a, b) != 2 {
		t.Error("Speedup(4,2) != 2")
	}
	if Speedup(a, Report{}) != 0 {
		t.Error("Speedup with a zero baseline must return the 0 sentinel")
	}
	if !strings.Contains(a.String(), "IPC") {
		t.Errorf("String = %q", a.String())
	}
}

// TestDegenerateInputs pins the documented contract: an empty run is the
// zero Report with no error; instructions with zero attributable cycles
// are an error (never a silent IPC = 0); negative counts are errors; and
// no error-free Report ever contains NaN or Inf.
func TestDegenerateInputs(t *testing.T) {
	t.Run("empty run", func(t *testing.T) {
		r, err := EV8().Estimate(Inputs{})
		if err != nil {
			t.Fatalf("empty run must be valid: %v", err)
		}
		if r != (Report{}) {
			t.Errorf("empty run = %+v, want zero Report", r)
		}
	})
	t.Run("zero model with instructions", func(t *testing.T) {
		var m Model
		if _, err := m.Estimate(Inputs{Instructions: 1000, Blocks: 100}); err == nil {
			t.Error("all-zero model with retired instructions must error, not report IPC = 0")
		}
	})
	t.Run("zero blocks zero events", func(t *testing.T) {
		// An issue-width-only model still attributes cycles, so this is
		// valid and the floor is the whole estimate.
		m := Model{IssueWidth: 8}
		r, err := m.Estimate(Inputs{Instructions: 800})
		if err != nil {
			t.Fatalf("issue-width floor should make this valid: %v", err)
		}
		if r.Cycles != 100 || r.IPC != 8 {
			t.Errorf("got %+v, want 100 cycles at 8 IPC", r)
		}
		// Without any cycle source at all it must error.
		if _, err := (Model{}).Estimate(Inputs{Instructions: 800}); err == nil {
			t.Error("no cycle source: want error")
		}
	})
	t.Run("negative counts", func(t *testing.T) {
		if _, err := EV8().Estimate(Inputs{Instructions: -1}); err == nil {
			t.Error("negative instructions: want error")
		}
		if _, err := EV8().Estimate(Inputs{Instructions: 10,
			PCGen: frontend.PCGenStats{CondMispredicts: -3}}); err == nil {
			t.Error("negative redirect count: want error")
		}
	})
	t.Run("no NaN or Inf", func(t *testing.T) {
		cases := []Inputs{
			{},
			{Instructions: 1, Blocks: 1},
			{Instructions: 1 << 40, Blocks: 1},
			{Blocks: 500}, // blocks without instructions: IPC 0, valid
		}
		for _, in := range cases {
			r, err := EV8().Estimate(in)
			if err != nil {
				continue
			}
			for _, v := range []float64{r.FetchCycles, r.RedirectCycles, r.LineCycles, r.IssueCycles, r.Cycles, r.IPC} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("Estimate(%+v) = %+v contains NaN/Inf", in, r)
				}
			}
		}
	})
}

// TestReportConsistencyInvariant sweeps a grid of inputs and asserts the
// package-level invariant on every error-free Report: IPC*Cycles ==
// Instructions, IPC <= IssueWidth, Cycles >= each component.
func TestReportConsistencyInvariant(t *testing.T) {
	models := []Model{EV8(), EV8Typical(), {IssueWidth: 4, FetchBlocksPerCycle: 1}}
	for _, m := range models {
		for _, instr := range []int64{0, 1, 999, 16000, 1 << 30} {
			for _, blocks := range []int64{0, 1, 200, 4000} {
				for _, misp := range []int64{0, 7, 500} {
					in := Inputs{Instructions: instr, Blocks: blocks,
						PCGen: frontend.PCGenStats{CondMispredicts: misp}}
					r, err := m.Estimate(in)
					if err != nil {
						continue
					}
					if instr > 0 {
						if got := r.IPC * r.Cycles; math.Abs(got-float64(instr)) > 1e-6*float64(instr)+1e-9 {
							t.Errorf("model %+v in %+v: IPC*Cycles = %v, want %d", m, in, got, instr)
						}
						if m.IssueWidth > 0 && r.IPC > m.IssueWidth+1e-12 {
							t.Errorf("model %+v in %+v: IPC %v exceeds issue width %v", m, in, r.IPC, m.IssueWidth)
						}
					}
					sum := r.FetchCycles + r.RedirectCycles + r.LineCycles
					if r.Cycles+1e-9 < sum || r.Cycles+1e-9 < r.IssueCycles {
						t.Errorf("model %+v in %+v: Cycles %v below components (sum %v, floor %v)",
							m, in, r.Cycles, sum, r.IssueCycles)
					}
				}
			}
		}
	}
}
