package counter

import (
	"testing"
	"testing/quick"

	"ev8pred/internal/rng"
)

func TestArrayInitAndFill(t *testing.T) {
	a := NewArray(100, WeakNotTaken)
	for i := uint64(0); i < 100; i++ {
		if a.Get(i) != WeakNotTaken {
			t.Fatalf("entry %d = %d, want weak not-taken", i, a.Get(i))
		}
	}
	a.Fill(StrongTaken)
	for i := uint64(0); i < 100; i++ {
		if a.Get(i) != StrongTaken {
			t.Fatalf("entry %d = %d after Fill", i, a.Get(i))
		}
	}
}

func TestArraySetGet(t *testing.T) {
	a := NewArray(64, 0)
	a.Set(0, 3)
	a.Set(1, 1)
	a.Set(63, 2)
	if a.Get(0) != 3 || a.Get(1) != 1 || a.Get(63) != 2 {
		t.Errorf("got %d %d %d", a.Get(0), a.Get(1), a.Get(63))
	}
	// Neighbors untouched.
	if a.Get(2) != 0 || a.Get(62) != 0 {
		t.Error("Set disturbed neighboring counters")
	}
}

func TestArraySaturation(t *testing.T) {
	a := NewArray(4, WeakNotTaken)
	for i := 0; i < 10; i++ {
		a.Update(0, true)
	}
	if a.Get(0) != StrongTaken {
		t.Errorf("after many taken: %d", a.Get(0))
	}
	for i := 0; i < 10; i++ {
		a.Update(0, false)
	}
	if a.Get(0) != StrongNotTaken {
		t.Errorf("after many not-taken: %d", a.Get(0))
	}
}

func TestArrayTransitionTable(t *testing.T) {
	a := NewArray(1, 0)
	cases := []struct {
		from  uint8
		taken bool
		want  uint8
	}{
		{0, true, 1}, {1, true, 2}, {2, true, 3}, {3, true, 3},
		{3, false, 2}, {2, false, 1}, {1, false, 0}, {0, false, 0},
	}
	for _, c := range cases {
		a.Set(0, c.from)
		a.Update(0, c.taken)
		if got := a.Get(0); got != c.want {
			t.Errorf("update(%d, %v) = %d, want %d", c.from, c.taken, got, c.want)
		}
	}
}

func TestArrayTaken(t *testing.T) {
	a := NewArray(4, 0)
	for st := uint8(0); st < 4; st++ {
		a.Set(0, st)
		if a.Taken(0) != (st >= 2) {
			t.Errorf("state %d: Taken = %v", st, a.Taken(0))
		}
	}
}

func TestArrayIndexWraps(t *testing.T) {
	a := NewArray(16, 0)
	a.Set(16, 3) // wraps to 0 for power-of-two arrays
	if a.Get(0) != 3 {
		t.Error("power-of-two array should mask the index")
	}
}

func TestArrayPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewArray(0) should panic")
		}
	}()
	NewArray(0, 0)
}

func TestArrayAgainstReferenceModel(t *testing.T) {
	// Property: the packed array behaves identically to a []uint8 model
	// under a random operation sequence.
	const n = 257 // non power of two is also supported for Get/Set in range
	a := NewArray(256, WeakNotTaken)
	ref := make([]uint8, 256)
	for i := range ref {
		ref[i] = WeakNotTaken
	}
	r := rng.New(42, 0)
	for step := 0; step < 100000; step++ {
		i := uint64(r.Intn(256))
		switch r.Intn(3) {
		case 0:
			v := uint8(r.Intn(4))
			a.Set(i, v)
			ref[i] = v
		case 1:
			taken := r.Bool(0.5)
			a.Update(i, taken)
			if taken && ref[i] < 3 {
				ref[i]++
			} else if !taken && ref[i] > 0 {
				ref[i]--
			}
		case 2:
			if a.Get(i) != ref[i] {
				t.Fatalf("step %d: entry %d = %d, ref %d", step, i, a.Get(i), ref[i])
			}
		}
	}
	_ = n
	for i := uint64(0); i < 256; i++ {
		if a.Get(i) != ref[i] {
			t.Fatalf("final entry %d = %d, ref %d", i, a.Get(i), ref[i])
		}
	}
}

func TestBitArrayBasics(t *testing.T) {
	b := NewBitArray(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Set(0, true)
	b.Set(64, true)
	b.Set(129, true)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) {
		t.Error("set bits not readable")
	}
	if b.Get(1) || b.Get(63) || b.Get(65) {
		t.Error("unset bits read as set")
	}
	b.Set(64, false)
	if b.Get(64) {
		t.Error("clear failed")
	}
}

func TestBitArrayPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBitArray(0) should panic")
		}
	}()
	NewBitArray(0)
}

func TestNewSplitValidation(t *testing.T) {
	if _, err := NewSplit(0, 1); err == nil {
		t.Error("zero prediction entries accepted")
	}
	if _, err := NewSplit(100, 64); err == nil {
		t.Error("non-power-of-two prediction entries accepted")
	}
	if _, err := NewSplit(64, 100); err == nil {
		t.Error("non-power-of-two hysteresis entries accepted")
	}
	if _, err := NewSplit(64, 128); err == nil {
		t.Error("hysteresis larger than prediction accepted")
	}
	s, err := NewSplit(128, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.PredEntries() != 128 || s.HystEntries() != 64 || s.SizeBits() != 192 {
		t.Errorf("sizes: %d %d %d", s.PredEntries(), s.HystEntries(), s.SizeBits())
	}
}

func TestMustSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSplit should panic on invalid sizes")
		}
	}()
	MustSplit(64, 128)
}

func TestSplitInitialState(t *testing.T) {
	s := MustSplit(64, 64)
	for i := uint64(0); i < 64; i++ {
		if s.State(i) != WeakNotTaken {
			t.Fatalf("initial state of %d = %d", i, s.State(i))
		}
		if s.Pred(i) {
			t.Fatalf("initial prediction of %d is taken", i)
		}
	}
}

func TestSplitStateRoundTrip(t *testing.T) {
	s := MustSplit(16, 16)
	for st := uint8(0); st < 4; st++ {
		s.SetState(3, st)
		if got := s.State(3); got != st {
			t.Errorf("SetState(%d) read back %d", st, got)
		}
	}
}

func TestSplitUpdateMatchesClassicCounter(t *testing.T) {
	// With equal-size arrays, Split.Update must track Array.Update exactly.
	s := MustSplit(64, 64)
	a := NewArray(64, WeakNotTaken)
	r := rng.New(7, 3)
	for step := 0; step < 200000; step++ {
		i := uint64(r.Intn(64))
		taken := r.Bool(0.6)
		s.Update(i, taken)
		a.Update(i, taken)
		if s.State(i) != a.Get(i) {
			t.Fatalf("step %d idx %d: split %d classic %d", step, i, s.State(i), a.Get(i))
		}
	}
}

func TestSplitStrengthen(t *testing.T) {
	s := MustSplit(8, 8)
	// Weak not-taken strengthened in the not-taken direction -> strong NT.
	s.Strengthen(0, false)
	if s.State(0) != StrongNotTaken {
		t.Errorf("state = %d, want strong not-taken", s.State(0))
	}
	// Strengthening an already strong counter keeps it strong.
	s.Strengthen(0, false)
	if s.State(0) != StrongNotTaken {
		t.Errorf("re-strengthen changed state to %d", s.State(0))
	}
	// Taken side.
	s.SetState(1, WeakTaken)
	s.Strengthen(1, true)
	if s.State(1) != StrongTaken {
		t.Errorf("state = %d, want strong taken", s.State(1))
	}
}

func TestSplitStrengthenContractPanic(t *testing.T) {
	s := MustSplit(8, 8)
	defer func() {
		if recover() == nil {
			t.Error("Strengthen against the prediction bit should panic")
		}
	}()
	s.Strengthen(0, true) // entry predicts not-taken
}

func TestSplitSharedHysteresisAliasing(t *testing.T) {
	// Half-size hysteresis: prediction entries i and i+half share one
	// hysteresis bit. Reproduce the §4.4 scenario: strengthening A makes
	// B's counter strong too (shared bit), and weakening via B resets A's
	// strength.
	s := MustSplit(16, 8)
	a, b := uint64(3), uint64(3+8)
	s.Update(a, true) // A becomes weak taken? no: from weak NT, flips to weak taken
	if s.State(a) != WeakTaken {
		t.Fatalf("A state = %d", s.State(a))
	}
	s.Update(a, true) // strengthens: shared hysteresis set
	if s.State(a) != StrongTaken {
		t.Fatalf("A state = %d, want strong taken", s.State(a))
	}
	// B's prediction bit is still 0, but it sees the shared strong bit:
	if s.State(b) != StrongNotTaken {
		t.Fatalf("B state = %d, want strong not-taken via shared hysteresis", s.State(b))
	}
	// A misprediction on B first weakens the shared bit...
	s.Update(b, true)
	if s.State(b) != WeakNotTaken {
		t.Fatalf("B after one mispredict = %d", s.State(b))
	}
	// ...which also weakened A.
	if s.State(a) != WeakTaken {
		t.Fatalf("A collaterally weakened: state = %d, want weak taken", s.State(a))
	}
	// Two consecutive accesses to B without an intermediate access to A
	// let B reach the correct strong state (the paper's recovery argument).
	s.Update(b, true)
	s.Update(b, true)
	if s.State(b) != StrongTaken {
		t.Fatalf("B failed to converge: state = %d", s.State(b))
	}
}

func TestSplitPredOnlyReadOnCorrectPath(t *testing.T) {
	// Behavioral check of the §4.3 claim: Strengthen never changes the
	// prediction bit, for any reachable state.
	s := MustSplit(4, 4)
	for _, st := range []uint8{WeakNotTaken, StrongNotTaken} {
		s.SetState(0, st)
		s.Strengthen(0, false)
		if s.Pred(0) {
			t.Errorf("Strengthen flipped the prediction bit from state %d", st)
		}
	}
	for _, st := range []uint8{WeakTaken, StrongTaken} {
		s.SetState(0, st)
		s.Strengthen(0, true)
		if !s.Pred(0) {
			t.Errorf("Strengthen flipped the prediction bit from state %d", st)
		}
	}
}

func TestSplitReset(t *testing.T) {
	s := MustSplit(32, 16)
	for i := uint64(0); i < 32; i++ {
		s.Update(i, true)
		s.Update(i, true)
	}
	s.Reset()
	for i := uint64(0); i < 32; i++ {
		if s.State(i) != WeakNotTaken {
			t.Fatalf("entry %d = %d after Reset", i, s.State(i))
		}
	}
}

func TestSplitQuickEquivalence(t *testing.T) {
	// Property: with full-size hysteresis, any bounded op sequence keeps
	// Split and the classic array in lockstep.
	f := func(ops []byte) bool {
		s := MustSplit(32, 32)
		a := NewArray(32, WeakNotTaken)
		for _, op := range ops {
			i := uint64(op & 31)
			taken := op&32 != 0
			s.Update(i, taken)
			a.Update(i, taken)
			if s.State(i) != a.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSatStepTransitionTable(t *testing.T) {
	cases := []struct {
		from  uint8
		taken bool
		want  uint8
	}{
		{0, true, 1}, {1, true, 2}, {2, true, 3}, {3, true, 3},
		{3, false, 2}, {2, false, 1}, {1, false, 0}, {0, false, 0},
	}
	for _, c := range cases {
		if got := SatStep(c.from, c.taken); got != c.want {
			t.Errorf("SatStep(%d, %v) = %d, want %d", c.from, c.taken, got, c.want)
		}
	}
}

func TestUpdateNReturnsAndSaturates(t *testing.T) {
	// UpdateN must report the pre- and post-transition states and leave the
	// array exactly where Set+SatStep would, including at both rails.
	a := NewArray(64, 0)
	for from := uint8(0); from < 4; from++ {
		for _, taken := range []bool{false, true} {
			a.Set(7, from)
			old, next := a.UpdateN(7, taken)
			if old != from {
				t.Errorf("UpdateN(%d, %v): old = %d", from, taken, old)
			}
			if want := SatStep(from, taken); next != want || a.Get(7) != want {
				t.Errorf("UpdateN(%d, %v): next = %d, stored = %d, want %d",
					from, taken, next, a.Get(7), want)
			}
		}
	}
	// Saturation boundaries: repeated updates pin at the rails and keep
	// reporting (rail, rail).
	a.Set(0, StrongTaken)
	for i := 0; i < 5; i++ {
		if old, next := a.UpdateN(0, true); old != StrongTaken || next != StrongTaken {
			t.Fatalf("taken rail iteration %d: (%d, %d)", i, old, next)
		}
	}
	a.Set(0, StrongNotTaken)
	for i := 0; i < 5; i++ {
		if old, next := a.UpdateN(0, false); old != StrongNotTaken || next != StrongNotTaken {
			t.Fatalf("not-taken rail iteration %d: (%d, %d)", i, old, next)
		}
	}
	// Neighbors in the same backing word are untouched by the single-word
	// read-modify-write.
	a.Set(8, WeakTaken)
	a.Set(9, StrongTaken)
	a.UpdateN(8, false)
	if a.Get(9) != StrongTaken || a.Get(7) != StrongTaken {
		t.Error("UpdateN disturbed neighboring counters")
	}
}

func TestUpdateNMatchesReferenceSequence(t *testing.T) {
	// A random UpdateN sequence must track the []uint8 model, old/next
	// included, across word boundaries.
	a := NewArray(256, WeakNotTaken)
	ref := make([]uint8, 256)
	for i := range ref {
		ref[i] = WeakNotTaken
	}
	r := rng.New(99, 0)
	for step := 0; step < 100000; step++ {
		i := uint64(r.Intn(256))
		taken := r.Bool(0.5)
		old, next := a.UpdateN(i, taken)
		wantOld := ref[i]
		ref[i] = SatStep(ref[i], taken)
		if old != wantOld || next != ref[i] {
			t.Fatalf("step %d idx %d: (%d, %d), want (%d, %d)", step, i, old, next, wantOld, ref[i])
		}
	}
}

func TestArrayTakenBit(t *testing.T) {
	a := NewArray(64, 0)
	for st := uint8(0); st < 4; st++ {
		a.Set(33, st)
		want := uint64(0)
		if st >= 2 {
			want = 1
		}
		if got := a.TakenBit(33); got != want {
			t.Errorf("state %d: TakenBit = %d, want %d", st, got, want)
		}
		if (a.TakenBit(33) == 1) != a.Taken(33) {
			t.Errorf("state %d: TakenBit disagrees with Taken", st)
		}
	}
}

func TestBitArrayBit(t *testing.T) {
	b := NewBitArray(128)
	b.Set(0, true)
	b.Set(63, true)
	b.Set(64, true)
	for _, i := range []uint64{0, 1, 62, 63, 64, 65, 127} {
		want := uint64(0)
		if b.Get(i) {
			want = 1
		}
		if got := b.Bit(i); got != want {
			t.Errorf("Bit(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestSplitPredBit(t *testing.T) {
	s := MustSplit(16, 8)
	for st := uint8(0); st < 4; st++ {
		s.SetState(5, st)
		want := uint64(0)
		if st >= 2 {
			want = 1
		}
		if got := s.PredBit(5); got != want {
			t.Errorf("state %d: PredBit = %d, want %d", st, got, want)
		}
	}
}

func BenchmarkArrayUpdate(b *testing.B) {
	a := NewArray(1<<16, WeakNotTaken)
	for i := 0; i < b.N; i++ {
		a.Update(uint64(i), i&3 != 0)
	}
}

func BenchmarkSplitUpdate(b *testing.B) {
	s := MustSplit(1<<16, 1<<15)
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i), i&3 != 0)
	}
}

func BenchmarkSplitPred(b *testing.B) {
	s := MustSplit(1<<16, 1<<15)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = sink != s.Pred(uint64(i))
	}
	_ = sink
}

func TestSplitTrafficCounters(t *testing.T) {
	s := MustSplit(16, 16)
	// Strengthen: one hysteresis write, nothing else.
	s.Strengthen(0, false)
	pw, hw, hr := s.Traffic()
	if pw != 0 || hw != 1 || hr != 0 {
		t.Errorf("after Strengthen: traffic = %d/%d/%d", pw, hw, hr)
	}
	// Wrong-direction update on a weak counter: hysteresis read +
	// prediction write.
	s.SetState(1, WeakNotTaken)
	s.Update(1, true)
	pw, hw, hr = s.Traffic()
	if pw != 1 || hr != 1 {
		t.Errorf("after weak flip: traffic = %d/%d/%d", pw, hw, hr)
	}
	// Wrong-direction update on a strong counter: hysteresis read+write.
	s.SetState(2, StrongNotTaken)
	s.Update(2, true)
	pw2, hw2, hr2 := s.Traffic()
	if pw2 != pw || hw2 != hw+1 || hr2 != hr+1 {
		t.Errorf("after strong weaken: traffic = %d/%d/%d", pw2, hw2, hr2)
	}
	s.Reset()
	if pw, hw, hr := s.Traffic(); pw != 0 || hw != 0 || hr != 0 {
		t.Error("Reset kept traffic counters")
	}
}
