// Package counter implements the saturating-counter storage used by every
// predictor in the library.
//
// Two representations are provided:
//
//   - Array: a densely packed array of classical 2-bit saturating counters
//     (states 0..3, taken iff state >= 2), used by the monolithic baseline
//     predictors (bimodal, gshare, GAs, bi-mode, YAGS, agree, local).
//
//   - Split: a 2-bit counter array stored as two physically separate bit
//     arrays — a prediction array and a hysteresis array — as in the Alpha
//     EV8 (§4.3 of the paper). The hysteresis array may be smaller than the
//     prediction array (§4.4): two (or more) prediction entries then share
//     one hysteresis entry, and the hysteresis index is the prediction index
//     with its most significant bits dropped.
//
// Counter-state conventions match the paper: the initial state of all
// entries is "weakly not taken", which in the split encoding is
// prediction=0, hysteresis=0 — conveniently the all-zero state.
package counter

import (
	"fmt"

	"ev8pred/internal/bitutil"
)

// State labels for the classical 2-bit counter, for readable tests.
const (
	StrongNotTaken = 0
	WeakNotTaken   = 1
	WeakTaken      = 2
	StrongTaken    = 3
)

// Array is a packed array of 2-bit saturating counters.
type Array struct {
	words   []uint64
	entries uint64
	initVal uint8
}

// fillUnit has bit 0 of every 2-bit counter lane set; multiplying by a
// counter value v in 0..3 replicates v into all 32 lanes without carries.
const fillUnit = 0x5555555555555555

// NewArray returns an Array of n counters, all initialized to init
// (one of the State constants). n must be positive.
func NewArray(n int, init uint8) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("counter: NewArray with n=%d", n))
	}
	a := &Array{words: make([]uint64, (n+31)/32), entries: uint64(n), initVal: init & 3}
	if init != 0 {
		a.Fill(init)
	}
	return a
}

// Len returns the number of counters.
func (a *Array) Len() int { return int(a.entries) }

// Fill sets every counter to v.
func (a *Array) Fill(v uint8) {
	w := uint64(v&3) * fillUnit
	for i := range a.words {
		a.words[i] = w
	}
}

// Reset restores every counter to the value the array was constructed
// with, mirroring Split.Reset, so baseline predictors can be reused
// without reallocating their tables.
func (a *Array) Reset() { a.Fill(a.initVal) }

// Get returns counter i (0..3).
func (a *Array) Get(i uint64) uint8 {
	i &= a.mask()
	return uint8(a.words[i>>5]>>((i&31)*2)) & 3
}

// Set stores v (0..3) into counter i.
func (a *Array) Set(i uint64, v uint8) {
	i &= a.mask()
	sh := (i & 31) * 2
	a.words[i>>5] = a.words[i>>5]&^(3<<sh) | uint64(v&3)<<sh
}

// Taken reports the prediction of counter i (state >= 2).
func (a *Array) Taken(i uint64) bool { return a.Get(i) >= 2 }

// TakenBit returns the prediction of counter i as a 0/1 word — the high
// bit of the 2-bit state, extracted without the bool round-trip. The
// batch kernels combine these bits with bit-parallel majority/arbitration
// logic instead of per-branch if ladders.
func (a *Array) TakenBit(i uint64) uint64 {
	i &= a.mask()
	return a.words[i>>5] >> ((i&31)*2 + 1) & 1
}

// SatStep returns the classical saturating transition of state c (0..3)
// toward the outcome: increment on taken, decrement on not taken,
// saturating at the rails. The comparisons compile to flag-setting
// arithmetic, not branches, which is what the batch kernel needs.
func SatStep(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// Update applies the classical saturating transition toward the outcome:
// increment on taken, decrement on not taken, saturating at 0 and 3.
func (a *Array) Update(i uint64, taken bool) {
	a.UpdateN(i, taken)
}

// UpdateN is Update with the backing word located once and the state
// transition reported back: the word index and lane shift are resolved a
// single time (Update previously recomputed them in its Get half and
// again in its Set half), the transition is SatStep, and the returned
// old/next states let instrumented callers observe the counter without
// re-locating it. The scalar Update path and the batch kernels share
// this as their only Array write path.
func (a *Array) UpdateN(i uint64, taken bool) (old, next uint8) {
	i &= a.mask()
	w := i >> 5
	sh := (i & 31) * 2
	word := a.words[w]
	old = uint8(word>>sh) & 3
	next = SatStep(old, taken)
	a.words[w] = word&^(3<<sh) | uint64(next)<<sh
	return old, next
}

// WordCount returns the number of backing 64-bit words — the exact length
// StateWords returns and LoadWords requires, so a restorer can validate a
// decoded snapshot's shape before touching any live state.
func (a *Array) WordCount() int { return len(a.words) }

// StateWords returns a copy of the packed counter words, for serialization
// (predictor.Snapshotter).
func (a *Array) StateWords() []uint64 {
	out := make([]uint64, len(a.words))
	copy(out, a.words)
	return out
}

// LoadWords replaces the counter state with ws, which must have exactly
// WordCount words. The array is untouched on error.
func (a *Array) LoadWords(ws []uint64) error {
	if len(ws) != len(a.words) {
		return fmt.Errorf("counter: state has %d words, array needs %d", len(ws), len(a.words))
	}
	copy(a.words, ws)
	return nil
}

// mask returns the index mask when entries is a power of two, otherwise it
// performs a bounds check by panicking via slice access later. All predictor
// tables in this library are powers of two; mask keeps Get/Set branch-free.
func (a *Array) mask() uint64 {
	if bitutil.IsPow2(a.entries) {
		return a.entries - 1
	}
	return ^uint64(0)
}

// BitArray is a packed array of single bits.
type BitArray struct {
	words   []uint64
	entries uint64
}

// NewBitArray returns a BitArray of n zero bits.
func NewBitArray(n int) *BitArray {
	if n <= 0 {
		panic(fmt.Sprintf("counter: NewBitArray with n=%d", n))
	}
	return &BitArray{words: make([]uint64, (n+63)/64), entries: uint64(n)}
}

// Len returns the number of bits.
func (b *BitArray) Len() int { return int(b.entries) }

// Get returns bit i.
func (b *BitArray) Get(i uint64) bool {
	i &= b.mask()
	return b.words[i>>6]>>(i&63)&1 == 1
}

// Bit returns bit i as a 0/1 word, for bit-parallel combines that want
// to stay out of bool-land.
func (b *BitArray) Bit(i uint64) uint64 {
	i &= b.mask()
	return b.words[i>>6] >> (i & 63) & 1
}

// Set stores v into bit i.
func (b *BitArray) Set(i uint64, v bool) {
	i &= b.mask()
	if v {
		b.words[i>>6] |= 1 << (i & 63)
	} else {
		b.words[i>>6] &^= 1 << (i & 63)
	}
}

// WordCount returns the number of backing 64-bit words (see Array.WordCount).
func (b *BitArray) WordCount() int { return len(b.words) }

// StateWords returns a copy of the packed bits, for serialization.
func (b *BitArray) StateWords() []uint64 {
	out := make([]uint64, len(b.words))
	copy(out, b.words)
	return out
}

// LoadWords replaces the bit state with ws, which must have exactly
// WordCount words. The array is untouched on error.
func (b *BitArray) LoadWords(ws []uint64) error {
	if len(ws) != len(b.words) {
		return fmt.Errorf("counter: state has %d words, bit array needs %d", len(ws), len(b.words))
	}
	copy(b.words, ws)
	return nil
}

func (b *BitArray) mask() uint64 {
	if bitutil.IsPow2(b.entries) {
		return b.entries - 1
	}
	return ^uint64(0)
}

// Split is a 2-bit counter bank stored as separate prediction and hysteresis
// bit arrays. predEntries and hystEntries must be powers of two with
// hystEntries <= predEntries; when hystEntries < predEntries the hysteresis
// entry for prediction index i is i with its top bits dropped, exactly the
// EV8 sharing scheme ("indexed using the same index function, except the
// most significant bit", §4.4).
//
// Split-encoding of the classical counter:
//
//	state            pred  hyst(strong)
//	strong not-taken  0     1
//	weak   not-taken  0     0     <- initial state (all zeros)
//	weak   taken      1     0
//	strong taken      1     1
type Split struct {
	pred     *BitArray
	hyst     *BitArray
	hystMask uint64

	// Write-traffic counters, the currency of the §4.3 argument: under
	// partial update a correct prediction costs at most one hysteresis
	// write and no prediction-array access beyond the fetch-time read.
	predWrites int64
	hystWrites int64
	hystReads  int64
}

// NewSplit builds a Split bank. It returns an error if the sizes are not
// powers of two or hystEntries exceeds predEntries.
func NewSplit(predEntries, hystEntries int) (*Split, error) {
	if predEntries <= 0 || !bitutil.IsPow2(uint64(predEntries)) {
		return nil, fmt.Errorf("counter: prediction entries %d not a positive power of two", predEntries)
	}
	if hystEntries <= 0 || !bitutil.IsPow2(uint64(hystEntries)) {
		return nil, fmt.Errorf("counter: hysteresis entries %d not a positive power of two", hystEntries)
	}
	if hystEntries > predEntries {
		return nil, fmt.Errorf("counter: hysteresis entries %d exceed prediction entries %d", hystEntries, predEntries)
	}
	return &Split{
		pred:     NewBitArray(predEntries),
		hyst:     NewBitArray(hystEntries),
		hystMask: uint64(hystEntries) - 1,
	}, nil
}

// MustSplit is NewSplit but panics on error; for static configurations.
func MustSplit(predEntries, hystEntries int) *Split {
	s, err := NewSplit(predEntries, hystEntries)
	if err != nil {
		panic(err)
	}
	return s
}

// PredEntries returns the size of the prediction array.
func (s *Split) PredEntries() int { return s.pred.Len() }

// HystEntries returns the size of the hysteresis array.
func (s *Split) HystEntries() int { return s.hyst.Len() }

// SizeBits returns the total storage in bits (prediction + hysteresis).
func (s *Split) SizeBits() int { return s.pred.Len() + s.hyst.Len() }

// Pred returns the prediction bit for index i (true = taken). This is the
// only read a correct prediction ever needs (§4.3).
func (s *Split) Pred(i uint64) bool { return s.pred.Get(i) }

// PredBit returns the prediction bit for index i as a 0/1 word — the
// read the batch kernel's bit-parallel majority-vote and meta-arbitration
// combine consumes.
func (s *Split) PredBit(i uint64) uint64 { return s.pred.Bit(i) }

// Strong reports whether the shared hysteresis bit for index i is set.
func (s *Split) Strong(i uint64) bool { return s.hyst.Get(i & s.hystMask) }

// State returns the classical 2-bit state (0..3) for index i, for tests.
func (s *Split) State(i uint64) uint8 {
	p, h := s.Pred(i), s.Strong(i)
	switch {
	case !p && h:
		return StrongNotTaken
	case !p && !h:
		return WeakNotTaken
	case p && !h:
		return WeakTaken
	default:
		return StrongTaken
	}
}

// SetState forces index i to the classical state v (0..3), for tests and
// initialization.
func (s *Split) SetState(i uint64, v uint8) {
	switch v & 3 {
	case StrongNotTaken:
		s.pred.Set(i, false)
		s.hyst.Set(i&s.hystMask, true)
	case WeakNotTaken:
		s.pred.Set(i, false)
		s.hyst.Set(i&s.hystMask, false)
	case WeakTaken:
		s.pred.Set(i, true)
		s.hyst.Set(i&s.hystMask, false)
	default:
		s.pred.Set(i, true)
		s.hyst.Set(i&s.hystMask, true)
	}
}

// Strengthen records a correct prediction in direction taken: the prediction
// bit is left untouched (and in hardware, unread); the hysteresis bit is set.
// Callers must only invoke Strengthen when Pred(i) == taken, which is the
// partial-update contract; a mismatch would corrupt the counter, so it
// panics in that case.
func (s *Split) Strengthen(i uint64, taken bool) {
	if s.pred.Get(i) != taken {
		panic("counter: Strengthen called with direction opposite to the prediction bit")
	}
	s.hystWrites++
	s.hyst.Set(i&s.hystMask, true)
}

// Update applies the full saturating-counter transition toward the outcome.
// This is the operation a misprediction triggers ("update all banks"): it
// reads the hysteresis bit and may write both arrays.
func (s *Split) Update(i uint64, taken bool) {
	p := s.pred.Get(i)
	if p == taken {
		// Stepping toward the current direction: strengthen.
		s.hystWrites++
		s.hyst.Set(i&s.hystMask, true)
		return
	}
	s.hystReads++
	if s.hyst.Get(i & s.hystMask) {
		// Strong counter weakens but keeps its direction.
		s.hystWrites++
		s.hyst.Set(i&s.hystMask, false)
		return
	}
	// Weak counter flips direction and stays weak.
	s.predWrites++
	s.pred.Set(i, !p)
}

// Traffic reports the array traffic since construction or Reset:
// prediction-array writes, hysteresis-array writes, and hysteresis-array
// reads (a hysteresis read happens only on the misprediction path, §4.3).
func (s *Split) Traffic() (predWrites, hystWrites, hystReads int64) {
	return s.predWrites, s.hystWrites, s.hystReads
}

// PredArray exposes the prediction bit array for serialization.
func (s *Split) PredArray() *BitArray { return s.pred }

// HystArray exposes the hysteresis bit array for serialization.
func (s *Split) HystArray() *BitArray { return s.hyst }

// LoadTraffic restores the write-traffic counters, which are mutable
// predictor state (the ablation harness and stats.Instrumented report
// them), so a restored bank keeps reporting seamlessly.
func (s *Split) LoadTraffic(predWrites, hystWrites, hystReads int64) {
	s.predWrites, s.hystWrites, s.hystReads = predWrites, hystWrites, hystReads
}

// Reset clears the bank to the initial weakly-not-taken state and zeroes
// the traffic counters.
func (s *Split) Reset() {
	for k := range s.pred.words {
		s.pred.words[k] = 0
	}
	for k := range s.hyst.words {
		s.hyst.words[k] = 0
	}
	s.predWrites, s.hystWrites, s.hystReads = 0, 0, 0
}
