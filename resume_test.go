package ev8pred_test

// Resume-equivalence differential suite: a checkpointed-and-resumed run
// must be bit-identical to a run that never stopped — same Branches,
// Mispredicts, Instructions, and (under Collect) the same attribution
// counters — for every Snapshotter family, every benchmark, update delays
// {0, 1, 8}, Collect on and off, and cut points that land mid-warmup and
// inside the commit-delay window. Both resume paths are exercised per
// case: continuing the live source with the same predictor instance, and
// the full serialization round trip (Checkpoint → bytes → Checkpoint,
// fresh predictor, fresh source repositioned via SkipRecords).

import (
	"reflect"
	"testing"

	"ev8pred"
	"ev8pred/internal/sim"
	"ev8pred/internal/workload"
)

// resumeCase is one Snapshotter predictor family under its natural
// information-vector mode.
type resumeCase struct {
	name string
	mode ev8pred.Mode
	make func() (ev8pred.Predictor, error)
}

// resumeRoster covers the four Snapshotter families: gshare, e-gskew,
// 2Bc-gskew and the EV8 model (the lone BlockObserver — its bank
// sequencer and in-flight snapshot ring ride the checkpoint too).
func resumeRoster() []resumeCase {
	return []resumeCase{
		{"gshare", ev8pred.ModeGhist(), func() (ev8pred.Predictor, error) { return ev8pred.NewGshare(1<<14, 14) }},
		{"egskew", ev8pred.ModeGhist(), func() (ev8pred.Predictor, error) { return ev8pred.NewEGskew(4096, 12, true) }},
		{"2bcgskew", ev8pred.ModeGhist(), func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config256K()) }},
		{"ev8", ev8pred.ModeEV8(), func() (ev8pred.Predictor, error) { return ev8pred.NewEV8(), nil }},
	}
}

// sameResult asserts bit-identity: the comparable core of Result via ==,
// the attribution counters by deep equality (the Stats pointer itself is
// expected to differ between runs).
func sameResult(t *testing.T, label string, got, want ev8pred.Result) {
	t.Helper()
	gc, wc := got, want
	gc.Stats, wc.Stats = nil, nil
	if gc != wc {
		t.Errorf("%s: result %+v != straight-through %+v", label, gc, wc)
	}
	switch {
	case (got.Stats == nil) != (want.Stats == nil):
		t.Errorf("%s: stats presence %v != %v", label, got.Stats != nil, want.Stats != nil)
	case got.Stats != nil && !reflect.DeepEqual(got.Stats.Sorted(), want.Stats.Sorted()):
		t.Errorf("%s: stats diverge:\n got %v\nwant %v", label, got.Stats.Sorted(), want.Stats.Sorted())
	}
}

// diffResume checkpoints a run at cut raw branches and resumes it both
// ways, asserting bit-identity with the straight-through Result.
func diffResume(t *testing.T, c resumeCase, prof workload.Profile, instr int64, opts sim.Options, cut int64, straight ev8pred.Result) {
	t.Helper()

	// In-process resume: same predictor instance, same live source.
	p, err := c.make()
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.New(prof, instr)
	if err != nil {
		t.Fatal(err)
	}
	cutOpts := opts
	cutOpts.MaxBranches = cut
	partial, ck, err := sim.RunCheckpoint(p, g, cutOpts)
	if err != nil {
		t.Fatalf("cut=%d: checkpoint: %v", cut, err)
	}
	if err := partial.Validate(); err != nil {
		t.Fatalf("cut=%d: partial result: %v", cut, err)
	}
	if ck.RawBranches != cut {
		t.Fatalf("cut=%d: checkpoint carries %d raw branches", cut, ck.RawBranches)
	}
	live, err := sim.ResumeFrom(p, g, opts, ck)
	if err != nil {
		t.Fatalf("cut=%d: live resume: %v", cut, err)
	}
	live.Workload = prof.Name
	sameResult(t, "live resume", live, straight)

	// Serialized resume: bytes → fresh Checkpoint, fresh predictor,
	// fresh source repositioned by record count.
	blob, err := ck.MarshalBinary()
	if err != nil {
		t.Fatalf("cut=%d: marshal: %v", cut, err)
	}
	var ck2 sim.Checkpoint
	if err := ck2.UnmarshalBinary(blob); err != nil {
		t.Fatalf("cut=%d: unmarshal: %v", cut, err)
	}
	p2, err := c.make()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := workload.New(prof, instr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SkipRecords(g2, ck2.Records); err != nil {
		t.Fatalf("cut=%d: %v", cut, err)
	}
	cold, err := sim.ResumeFrom(p2, g2, opts, &ck2)
	if err != nil {
		t.Fatalf("cut=%d: serialized resume: %v", cut, err)
	}
	cold.Workload = prof.Name
	sameResult(t, "serialized resume", cold, straight)
}

// TestResumeEquivalence is the headline differential: every Snapshotter
// family × every benchmark × update delay {0, 1, 8} × Collect on/off,
// with cut points mid-warmup (200 < Warmup), barely into the stream while
// the commit-delay ring is still filling (5), and in steady state (1000).
func TestResumeEquivalence(t *testing.T) {
	const (
		instr  = 40_000
		warmup = 500
	)
	cuts := []int64{5, 200, 1000}
	for _, c := range resumeRoster() {
		for _, prof := range ev8pred.Benchmarks() {
			t.Run(c.name+"/"+prof.Name, func(t *testing.T) {
				for _, delay := range []int{0, 1, 8} {
					for _, collect := range []bool{false, true} {
						opts := sim.Options{Mode: c.mode, UpdateDelay: delay, Warmup: warmup, Collect: collect}
						p, err := c.make()
						if err != nil {
							t.Fatal(err)
						}
						straight, err := ev8pred.RunBenchmark(p, prof, instr, opts)
						if err != nil {
							t.Fatal(err)
						}
						if straight.Branches == 0 {
							t.Fatal("degenerate straight-through run (0 measured branches)")
						}
						for _, cut := range cuts {
							diffResume(t, c, prof, instr, opts, cut, straight)
						}
					}
				}
			})
		}
	}
}

// TestResumeExtendsRun pins the MaxBranches semantics: a checkpoint at N
// resumed with a higher budget matches a straight-through run at that
// budget — stopping early is free.
func TestResumeExtendsRun(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const instr = 40_000
	full := sim.Options{Mode: ev8pred.ModeGhist(), MaxBranches: 4_000, UpdateDelay: 8, Warmup: 300}

	p, err := ev8pred.NewGshare(1<<14, 14)
	if err != nil {
		t.Fatal(err)
	}
	straight, err := ev8pred.RunBenchmark(p, prof, instr, full)
	if err != nil {
		t.Fatal(err)
	}

	p2, err := ev8pred.NewGshare(1<<14, 14)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.New(prof, instr)
	if err != nil {
		t.Fatal(err)
	}
	half := full
	half.MaxBranches = 2_000
	if _, ck, err := sim.RunCheckpoint(p2, g, half); err != nil {
		t.Fatal(err)
	} else if resumed, err := sim.ResumeFrom(p2, g, full, ck); err != nil {
		t.Fatal(err)
	} else {
		resumed.Workload = prof.Name
		sameResult(t, "extended resume", resumed, straight)
	}
}

// TestResumeValidation pins the typed failure modes: a non-Snapshotter
// predictor, mismatched options, and a predictor-name mismatch must all
// refuse cleanly instead of resuming a different experiment.
func TestResumeValidation(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.New(prof, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ev8pred.NewGshare(1<<12, 10)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{Mode: ev8pred.ModeGhist(), MaxBranches: 500, UpdateDelay: 4}
	_, ck, err := sim.RunCheckpoint(p, g, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Non-snapshotter: the bimodal family has no state serialization.
	bim, err := ev8pred.NewBimodal(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.RunCheckpoint(bim, g, opts); err == nil {
		t.Error("RunCheckpoint accepted a non-Snapshotter predictor")
	}
	if _, err := sim.ResumeFrom(bim, g, opts, ck); err == nil {
		t.Error("ResumeFrom accepted a non-Snapshotter predictor")
	}

	// Option drift.
	for name, bad := range map[string]sim.Options{
		"mode":    {Mode: ev8pred.ModeLghist(), UpdateDelay: 4},
		"delay":   {Mode: ev8pred.ModeGhist(), UpdateDelay: 2},
		"warmup":  {Mode: ev8pred.ModeGhist(), UpdateDelay: 4, Warmup: 7},
		"lenient": {Mode: ev8pred.ModeGhist(), UpdateDelay: 4, LenientFlow: true},
	} {
		if _, err := sim.ResumeFrom(p, g, bad, ck); err == nil {
			t.Errorf("ResumeFrom accepted drifted %s options", name)
		}
	}

	// Predictor mismatch: same family, different geometry (and name).
	other, err := ev8pred.NewGshare(1<<13, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ResumeFrom(other, g, opts, ck); err == nil {
		t.Error("ResumeFrom accepted a differently-configured predictor")
	}
}

// TestWarmEnsembleMatchesStraightRuns pins the warm-state fan-out: K
// members resumed from one shared warm checkpoint must each match an
// independent straight-through run — the warmup is simulated once, the
// results as if it never was.
func TestWarmEnsembleMatchesStraightRuns(t *testing.T) {
	const (
		instr = 40_000
		k     = 3
	)
	for _, c := range resumeRoster() {
		t.Run(c.name, func(t *testing.T) {
			for _, delay := range []int{0, 8} {
				prof, err := ev8pred.BenchmarkByName("go")
				if err != nil {
					t.Fatal(err)
				}
				opts := sim.Options{Mode: c.mode, UpdateDelay: delay, Warmup: 400, Collect: true}
				factory := sim.Factory(c.make)
				rs, err := sim.RunWarmEnsembleBenchmark(factory, k, prof, instr, 1_000, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(rs) != k {
					t.Fatalf("%d results for %d members", len(rs), k)
				}
				p, err := c.make()
				if err != nil {
					t.Fatal(err)
				}
				straight, err := ev8pred.RunBenchmark(p, prof, instr, opts)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range rs {
					sameResult(t, "warm member", r, straight)
					if r.Branches == 0 {
						t.Errorf("member %d: degenerate run", i)
					}
				}
			}
		})
	}
}
