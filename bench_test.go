package ev8pred_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, each running the corresponding experiment end to end on a
// scaled-down deterministic workload (full-scale regeneration is
// cmd/ev8bench). Plus raw predictor-throughput benchmarks for the core
// predictors, which is what -benchmem is most useful for.
//
// Run with: go test -bench=. -benchmem

import (
	"testing"

	"ev8pred"
	"ev8pred/internal/experiments"
	"ev8pred/internal/workload"
)

// benchConfig keeps experiment benchmarks fast while preserving shape.
func benchConfig(instr int64, names ...string) experiments.Config {
	cfg := experiments.Config{Instructions: instr}
	if len(names) == 0 {
		cfg.Benchmarks = workload.Benchmarks()
		return cfg
	}
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		cfg.Benchmarks = append(cfg.Benchmarks, p)
	}
	return cfg
}

func runExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if tbl.Rows() == 0 {
			b.Fatal("experiment produced an empty table")
		}
	}
}

func BenchmarkTable1EV8Throughput(b *testing.B) {
	// Table 1 is a configuration listing; the meaningful benchmark is
	// the throughput of the predictor it describes.
	p := ev8pred.NewEV8()
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	src, err := ev8pred.NewWorkload(prof, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	r, err := ev8pred.Run(p, src, ev8pred.Options{Mode: ev8pred.ModeEV8(), MaxBranches: int64(b.N)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(1000*float64(r.Mispredicts)/float64(r.Instructions+1), "misp/KI")
}

func BenchmarkTable2TraceGen(b *testing.B) {
	runExperiment(b, "table2", benchConfig(300_000))
}

func BenchmarkTable3LghistRatio(b *testing.B) {
	runExperiment(b, "table3", benchConfig(300_000))
}

func BenchmarkFig5Schemes(b *testing.B) {
	runExperiment(b, "fig5", benchConfig(200_000, "li", "go"))
}

func BenchmarkFig6ShortHistory(b *testing.B) {
	runExperiment(b, "fig6", benchConfig(200_000, "li", "go"))
}

func BenchmarkFig7InfoVector(b *testing.B) {
	runExperiment(b, "fig7", benchConfig(200_000, "li", "perl"))
}

func BenchmarkFig8TableSizes(b *testing.B) {
	runExperiment(b, "fig8", benchConfig(200_000, "li", "perl"))
}

func BenchmarkFig9Wordline(b *testing.B) {
	runExperiment(b, "fig9", benchConfig(200_000, "li", "perl"))
}

func BenchmarkFig10Limits(b *testing.B) {
	runExperiment(b, "fig10", benchConfig(200_000, "li", "m88ksim"))
}

func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ablations", benchConfig(150_000, "li"))
}

func BenchmarkPerfModel(b *testing.B) {
	runExperiment(b, "perf", benchConfig(200_000, "li", "m88ksim"))
}

func BenchmarkSMT(b *testing.B) {
	runExperiment(b, "smt", benchConfig(400_000, "perl"))
}

func BenchmarkBackupHierarchy(b *testing.B) {
	runExperiment(b, "backup", benchConfig(200_000, "li"))
}

// Serial vs parallel harness: the same multi-cell experiment forced onto
// the serial path (Workers 1) and fanned across the CPUs (Workers 0).
// On a multi-core machine the ratio approximates the core count; the
// outputs are byte-identical either way (see TestParallelSerialByteIdentical).

func benchWorkers(b *testing.B, workers int) {
	b.Helper()
	cfg := benchConfig(200_000) // full suite: 8 cells per column
	cfg.Workers = workers
	e, err := experiments.ByID("fig5")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteSerial(b *testing.B)   { benchWorkers(b, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchWorkers(b, 0) }

// Raw predictor throughput: branches predicted+updated per second.

func benchPredictor(b *testing.B, p ev8pred.Predictor, mode ev8pred.Mode) {
	b.Helper()
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	src, err := ev8pred.NewWorkload(prof, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := ev8pred.Run(p, src, ev8pred.Options{Mode: mode, MaxBranches: int64(b.N)}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPredictorEV8(b *testing.B) {
	benchPredictor(b, ev8pred.NewEV8(), ev8pred.ModeEV8())
}

func BenchmarkPredictor2BcGskew512K(b *testing.B) {
	p, err := ev8pred.New2BcGskew(ev8pred.Config512K())
	if err != nil {
		b.Fatal(err)
	}
	benchPredictor(b, p, ev8pred.ModeGhist())
}

func BenchmarkPredictorGshare2M(b *testing.B) {
	p, err := ev8pred.NewGshare(1024*1024, 20)
	if err != nil {
		b.Fatal(err)
	}
	benchPredictor(b, p, ev8pred.ModeGhist())
}

func BenchmarkPredictorBimodal(b *testing.B) {
	p, err := ev8pred.NewBimodal(256 * 1024)
	if err != nil {
		b.Fatal(err)
	}
	benchPredictor(b, p, ev8pred.ModeGhist())
}

func BenchmarkPredictorPerceptron(b *testing.B) {
	p, err := ev8pred.NewPerceptron(1024, 27)
	if err != nil {
		b.Fatal(err)
	}
	benchPredictor(b, p, ev8pred.ModeGhist())
}
