package ev8pred

import (
	"ev8pred/internal/predictor/agree"
	"ev8pred/internal/predictor/bimodal"
	"ev8pred/internal/predictor/bimode"
	"ev8pred/internal/predictor/cascade"
	"ev8pred/internal/predictor/dhlf"
	"ev8pred/internal/predictor/egskew"
	"ev8pred/internal/predictor/gas"
	"ev8pred/internal/predictor/gshare"
	"ev8pred/internal/predictor/hybrid"
	"ev8pred/internal/predictor/local"
	"ev8pred/internal/predictor/perceptron"
	"ev8pred/internal/predictor/yags"
	"ev8pred/internal/trace"
	"ev8pred/internal/workload"
)

// Baseline predictor constructors — the comparison roster of the paper's
// §8.2 plus the local/hybrid predictors of §3 and the perceptron of §9.
// All sizes are table entry counts and must be powers of two; histLen is
// in branches (bits).

// NewBimodal returns a PC-indexed 2-bit counter predictor (Smith [21]).
func NewBimodal(entries int) (Predictor, error) { return bimodal.New(entries) }

// NewGshare returns a gshare predictor (McFarling [14]).
func NewGshare(entries, histLen int) (Predictor, error) { return gshare.New(entries, histLen) }

// NewGAs returns a two-level GAs predictor (Yeh–Patt [27]) with
// 2^(histLen+addrBits) counters.
func NewGAs(histLen, addrBits int) (Predictor, error) { return gas.New(histLen, addrBits) }

// NewEGskew returns an enhanced skewed predictor (Michaud et al. [15])
// with three banks of entries counters.
func NewEGskew(entries, histLen int, partialUpdate bool) (Predictor, error) {
	return egskew.New(entries, histLen, partialUpdate)
}

// NewBimode returns a bi-mode predictor (Lee et al. [13]).
func NewBimode(dirEntries, choiceEntries, histLen int) (Predictor, error) {
	return bimode.New(dirEntries, choiceEntries, histLen)
}

// NewYAGS returns a YAGS predictor (Eden–Mudge [4]) with 6-bit tags.
func NewYAGS(choiceEntries, cacheEntries, histLen int) (Predictor, error) {
	return yags.New(choiceEntries, cacheEntries, histLen)
}

// NewAgree returns an agree predictor (Sprangle et al. [22]).
func NewAgree(biasEntries, agreeEntries, histLen int) (Predictor, error) {
	return agree.New(biasEntries, agreeEntries, histLen)
}

// NewLocal returns a two-level local-history predictor (21264-style [7]).
func NewLocal(histEntries, histBits int) (Predictor, error) {
	return local.New(histEntries, histBits)
}

// NewHybrid combines two predictors with a PC-indexed chooser
// (McFarling [14]); the 21264 tournament predictor is NewHybrid(local,
// global, ...).
func NewHybrid(a, b Predictor, chooserEntries int) (Predictor, error) {
	return hybrid.New(a, b, chooserEntries)
}

// NewPerceptron returns a perceptron predictor (Jiménez–Lin [11]).
func NewPerceptron(entries, histLen int) (Predictor, error) {
	return perceptron.New(entries, histLen)
}

// NewDHLF returns a gshare predictor with dynamic history-length fitting
// (Juan et al. [12], the adaptivity §4.5 cites).
func NewDHLF(entries, maxHistLen int, epoch int64) (Predictor, error) {
	return dhlf.New(entries, maxHistLen, epoch)
}

// NewCascade returns the §9 backup hierarchy: primary predicts fast,
// backup overrides late where experience and confidence justify it.
// overrideEntries 0 selects the default table size.
func NewCascade(primary, backup Predictor, overrideEntries int) (Predictor, error) {
	return cascade.New(primary, backup, cascade.Config{OverrideEntries: overrideEntries})
}

// NewInterleaved merges per-thread branch sources into one SMT stream with
// roughly quantum instructions per thread switch; run the result with Run
// and the simulator keeps per-thread histories automatically.
func NewInterleaved(threads []Source, quantum int64) Source {
	return workload.NewInterleaved(threads, quantum)
}

// CollectTrace drains a source into memory (max <= 0 collects everything);
// wrap the result with NewSliceSource to replay it.
func CollectTrace(src Source, max int) []Branch { return trace.Collect(src, max) }

// NewSliceSource wraps records in a replayable source.
func NewSliceSource(records []Branch) Source { return trace.NewSlice(records) }
