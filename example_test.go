package ev8pred_test

import (
	"fmt"
	"log"

	"ev8pred"
)

// The godoc examples run as tests: their outputs are deterministic
// because every workload and predictor is seeded.

// Example runs the EV8 predictor over a synthetic benchmark under its
// hardware information vector.
func Example() {
	p := ev8pred.NewEV8()
	prof, err := ev8pred.BenchmarkByName("m88ksim")
	if err != nil {
		log.Fatal(err)
	}
	r, err := ev8pred.RunBenchmark(p, prof, 1_000_000, ev8pred.Options{Mode: ev8pred.ModeEV8()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Name())
	fmt.Println("predicts well:", r.Accuracy() > 0.95)
	fmt.Println("bank conflicts:", p.BankConflicts())
	// Output:
	// EV8-352Kbit
	// predicts well: true
	// bank conflicts: 0
}

// ExampleNew2BcGskew builds the unconstrained 512 Kbit predictor of the
// paper's Figure 5 and checks its storage budget.
func ExampleNew2BcGskew() {
	p, err := ev8pred.New2BcGskew(ev8pred.Config512K())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Name(), p.SizeBits()/1024, "Kbits")
	// Output:
	// 2Bc-gskew-512Kbit 512 Kbits
}

// ExampleNewCascade assembles the §9 backup hierarchy: the EV8 predictor
// with a late perceptron override.
func ExampleNewCascade() {
	backup, err := ev8pred.NewPerceptron(1024, 27)
	if err != nil {
		log.Fatal(err)
	}
	c, err := ev8pred.NewCascade(ev8pred.NewEV8(), backup, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Name())
	// Output:
	// cascade(EV8-352Kbit->perceptron-1024x28w)
}

// ExampleRunFrontEnd drives the complete §2 PC-address generator and
// applies the paper's performance model.
func ExampleRunFrontEnd() {
	prof, err := ev8pred.BenchmarkByName("perl")
	if err != nil {
		log.Fatal(err)
	}
	src, err := ev8pred.NewWorkload(prof, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	r, err := ev8pred.RunFrontEnd(ev8pred.NewEV8(), src,
		ev8pred.Options{Mode: ev8pred.ModeEV8()}, ev8pred.FrontEndConfig{})
	if err != nil {
		log.Fatal(err)
	}
	est, err := ev8pred.EstimatePerf(ev8pred.PerfEV8(), r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("returns predicted by the RAS:", r.RASAccuracy > 0.99)
	fmt.Println("IPC within machine limits:", est.IPC > 0 && est.IPC <= 8)
	// Output:
	// returns predicted by the RAS: true
	// IPC within machine limits: true
}
