package ev8pred_test

// Differential test for the observability layer's zero-perturbation
// contract: running any predictor with Options.Collect on must produce a
// Result whose core fields are byte-identical to the same run with
// Collect off — attribution may only ever ADD the Stats snapshot, never
// change a prediction or a count (docs/OBSERVABILITY.md).

import (
	"testing"

	"ev8pred"
	"ev8pred/internal/stats"
)

// TestCollectDoesNotPerturbResults runs every roster predictor over every
// benchmark twice — Collect off, Collect on — and compares the Results
// with == after detaching the Stats pointer, which is the only field
// allowed to differ.
func TestCollectDoesNotPerturbResults(t *testing.T) {
	for _, tc := range fusedRoster() {
		t.Run(tc.name, func(t *testing.T) {
			for _, prof := range ev8pred.Benchmarks() {
				run := func(collect bool) ev8pred.Result {
					p, err := tc.make()
					if err != nil {
						t.Fatal(err)
					}
					r, err := ev8pred.RunBenchmark(p, prof, 100_000,
						ev8pred.Options{Mode: tc.mode, Collect: collect})
					if err != nil {
						t.Fatal(err)
					}
					return r
				}
				off := run(false)
				on := run(true)
				_, instrumented := mustMake(t, tc).(stats.Instrumented)
				if instrumented && on.Stats == nil {
					t.Fatalf("%s/%s: instrumented predictor returned no Stats under Collect",
						tc.name, prof.Name)
				}
				if !instrumented && on.Stats != nil {
					t.Fatalf("%s/%s: uninstrumented predictor grew Stats", tc.name, prof.Name)
				}
				if off.Stats != nil {
					t.Fatalf("%s/%s: Stats populated without Collect", tc.name, prof.Name)
				}
				core := on
				core.Stats = nil
				if core != off {
					t.Errorf("%s/%s: Collect changed the Result:\n off %+v\n  on %+v",
						tc.name, prof.Name, off, core)
				}
				if off.Branches == 0 {
					t.Errorf("%s/%s: degenerate run (0 branches)", tc.name, prof.Name)
				}
			}
		})
	}
}

// TestCollectedCountersAreConsistent cross-checks the attribution against
// the Result it annotates: under immediate update with no warmup, every
// measured branch is one attributed update, and the update-time
// misprediction count must equal the simulator's.
func TestCollectedCountersAreConsistent(t *testing.T) {
	for _, tc := range fusedRoster() {
		p := mustMake(t, tc)
		if _, ok := p.(stats.Instrumented); !ok {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			prof, err := ev8pred.BenchmarkByName("gcc")
			if err != nil {
				t.Fatal(err)
			}
			r, err := ev8pred.RunBenchmark(mustMake(t, tc), prof, 100_000,
				ev8pred.Options{Mode: tc.mode, Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			m := r.Stats.Map()
			if got := m["updates"]; got != r.Branches {
				t.Errorf("updates = %d, want %d (one per branch)", got, r.Branches)
			}
			if got := m["mispredicts"]; got != r.Mispredicts {
				t.Errorf("stats mispredicts = %d, Result.Mispredicts = %d", got, r.Mispredicts)
			}
			for _, c := range *r.Stats {
				if c.Value < 0 {
					t.Errorf("counter %s is negative: %d", c.Name, c.Value)
				}
			}
		})
	}
}

// mustMake builds a fresh roster predictor or fails the test.
func mustMake(t *testing.T, tc fusedCase) ev8pred.Predictor {
	t.Helper()
	p, err := tc.make()
	if err != nil {
		t.Fatal(err)
	}
	return p
}
