package ev8pred_test

// Differential suite for the batch kernel (docs/PERFORMANCE.md, "Batch
// kernel"): Options.Batch is a schedule knob, never a result knob, so for
// every BatchPredictor family, every benchmark, every update delay and
// both Collect settings, a run with BatchAuto must produce byte-identical
// Results — Stats included — to the same run forced onto the scalar path
// with BatchOff. At delay 0 this compares the two genuinely different
// execution paths; at delay > 0 it pins that BatchAuto correctly declines
// ineligible runs.

import (
	"reflect"
	"testing"

	"ev8pred"
	"ev8pred/internal/predictor"
	"ev8pred/internal/trace"
)

type batchCase struct {
	name string
	make func() (ev8pred.Predictor, error)
}

// batchRoster lists every predictor family implementing BatchPredictor,
// covering both 2Bc-gskew update policies and both e-gskew policies.
func batchRoster() []batchCase {
	total512 := ev8pred.Config512K()
	total512.PartialUpdate = false
	total512.Name = "2bcg-512K-total"
	return []batchCase{
		{"2bcg-512K", func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config512K()) }},
		{"2bcg-512K-total", func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(total512) }},
		{"2bcg-ev8size", func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.ConfigEV8Size()) }},
		{"egskew-partial", func() (ev8pred.Predictor, error) { return ev8pred.NewEGskew(8192, 13, true) }},
		{"egskew-total", func() (ev8pred.Predictor, error) { return ev8pred.NewEGskew(8192, 13, false) }},
		{"gshare", func() (ev8pred.Predictor, error) { return ev8pred.NewGshare(1<<16, 16) }},
	}
}

// equalResult compares two Results byte for byte: the comparable core, and
// the attribution counters by value (the Stats pointers themselves always
// differ between independent runs).
func equalResult(a, b ev8pred.Result) bool {
	sa, sb := a.Stats, b.Stats
	a.Stats, b.Stats = nil, nil
	if a != b {
		return false
	}
	if (sa == nil) != (sb == nil) {
		return false
	}
	return sa == nil || reflect.DeepEqual(*sa, *sb)
}

// runBatchPair runs one cold predictor per path — BatchAuto and BatchOff —
// over the same benchmark and returns both Results.
func runBatchPair(t *testing.T, tc batchCase, bench string, instr int64, opts ev8pred.Options) (auto, off ev8pred.Result) {
	t.Helper()
	prof, err := ev8pred.BenchmarkByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode ev8pred.BatchMode) ev8pred.Result {
		p, err := tc.make()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.(predictor.BatchPredictor); !ok {
			t.Fatalf("%s does not implement BatchPredictor", tc.name)
		}
		o := opts
		o.Batch = mode
		r, err := ev8pred.RunBenchmark(p, prof, instr, o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	return run(ev8pred.BatchAuto), run(ev8pred.BatchOff)
}

// TestBatchScalarEquivalent is the full matrix: every batch family, every
// benchmark, delays {0, 1, 8}, Collect on and off.
func TestBatchScalarEquivalent(t *testing.T) {
	for _, tc := range batchRoster() {
		t.Run(tc.name, func(t *testing.T) {
			for _, prof := range ev8pred.Benchmarks() {
				for _, delay := range []int{0, 1, 8} {
					for _, collect := range []bool{false, true} {
						opts := ev8pred.Options{
							Mode:        ev8pred.ModeGhist(),
							UpdateDelay: delay,
							Collect:     collect,
						}
						auto, off := runBatchPair(t, tc, prof.Name, 50_000, opts)
						if !equalResult(auto, off) {
							t.Errorf("%s delay=%d collect=%v: batch %+v != scalar %+v",
								prof.Name, delay, collect, auto, off)
						}
						if auto.Branches == 0 {
							t.Errorf("%s delay=%d: degenerate run (0 branches)", prof.Name, delay)
						}
						if collect && auto.Stats == nil {
							t.Errorf("%s delay=%d: Collect run returned no Stats", prof.Name, delay)
						}
					}
				}
			}
		})
	}
}

// TestBatchWarmupEquivalent pins the warmup lane masking: warmup
// boundaries that land mid-chunk and mid-word must gate exactly the same
// branches as the scalar loop's per-branch comparison.
func TestBatchWarmupEquivalent(t *testing.T) {
	tc := batchRoster()[0]
	for _, warmup := range []int64{1, 63, 64, 1000, 1025, 5000} {
		opts := ev8pred.Options{Mode: ev8pred.ModeGhist(), Warmup: warmup}
		auto, off := runBatchPair(t, tc, "gcc", 100_000, opts)
		if !equalResult(auto, off) {
			t.Errorf("warmup=%d: batch %+v != scalar %+v", warmup, auto, off)
		}
	}
}

// TestBatchMaxBranchesEquivalent pins the fill sizing: stopping at a
// branch budget that lands mid-chunk must measure the same branches (and
// consume the same records — checked separately by the checkpoint test).
func TestBatchMaxBranchesEquivalent(t *testing.T) {
	tc := batchRoster()[0]
	for _, max := range []int64{1, 100, 1023, 1024, 1500, 4096} {
		opts := ev8pred.Options{Mode: ev8pred.ModeGhist(), MaxBranches: max}
		auto, off := runBatchPair(t, tc, "go", 10_000_000, opts)
		if !equalResult(auto, off) {
			t.Errorf("max=%d: batch %+v != scalar %+v", max, auto, off)
		}
		if auto.Branches != max {
			t.Errorf("max=%d: run measured %d branches", max, auto.Branches)
		}
	}
}

// TestEnsembleBatchScalarEquivalent covers the ensemble twin with a mixed
// roster — batch-capable members ride the kernels, the bimodal control
// rides the per-branch replay — against BatchOff and per-cell Run.
func TestEnsembleBatchScalarEquivalent(t *testing.T) {
	factories := []ev8pred.Factory{
		func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config512K()) },
		func() (ev8pred.Predictor, error) { return ev8pred.NewEGskew(8192, 13, true) },
		func() (ev8pred.Predictor, error) { return ev8pred.NewGshare(1<<16, 16) },
		func() (ev8pred.Predictor, error) { return ev8pred.NewBimodal(1 << 14) },
	}
	for _, bench := range []string{"gcc", "li"} {
		for _, collect := range []bool{false, true} {
			prof, err := ev8pred.BenchmarkByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			runEns := func(mode ev8pred.BatchMode) []ev8pred.Result {
				opts := ev8pred.Options{Mode: ev8pred.ModeGhist(), Collect: collect,
					Ensemble: ev8pred.EnsembleOn, Batch: mode}
				rs, err := ev8pred.RunEnsembleBenchmark(factories, prof, 200_000, opts)
				if err != nil {
					t.Fatal(err)
				}
				return rs
			}
			auto, off := runEns(ev8pred.BatchAuto), runEns(ev8pred.BatchOff)
			for k := range factories {
				if !equalResult(auto[k], off[k]) {
					t.Errorf("%s collect=%v member %d: batch %+v != scalar %+v",
						bench, collect, k, auto[k], off[k])
				}
				// And both must equal an independent per-cell Run.
				p, err := factories[k]()
				if err != nil {
					t.Fatal(err)
				}
				solo, err := ev8pred.RunBenchmark(p, prof, 200_000,
					ev8pred.Options{Mode: ev8pred.ModeGhist(), Collect: collect})
				if err != nil {
					t.Fatal(err)
				}
				if !equalResult(auto[k], solo) {
					t.Errorf("%s collect=%v member %d: ensemble batch %+v != solo %+v",
						bench, collect, k, auto[k], solo)
				}
			}
		}
	}
}

// TestBatchCheckpointEquivalent pins record-consumption parity: a
// checkpoint captured through the batch path must match one captured on
// the scalar path exactly (same Records, same serialized state), and
// resuming across the path boundary must reproduce the uninterrupted run.
func TestBatchCheckpointEquivalent(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ev8pred.NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := trace.Collect(g, 30_000)
	const stop = 7_777 // mid-chunk, mid-word
	capture := func(mode ev8pred.BatchMode) (ev8pred.Result, *ev8pred.Checkpoint) {
		p, err := ev8pred.New2BcGskew(ev8pred.Config512K())
		if err != nil {
			t.Fatal(err)
		}
		opts := ev8pred.Options{Mode: ev8pred.ModeGhist(), MaxBranches: stop, Batch: mode}
		r, ck, err := ev8pred.RunCheckpoint(p, trace.NewSlice(records), opts)
		if err != nil {
			t.Fatal(err)
		}
		return r, ck
	}
	rAuto, ckAuto := capture(ev8pred.BatchAuto)
	rOff, ckOff := capture(ev8pred.BatchOff)
	if !equalResult(rAuto, rOff) {
		t.Fatalf("checkpoint-run results diverge: %+v vs %+v", rAuto, rOff)
	}
	if ckAuto.Records != ckOff.Records {
		t.Fatalf("record consumption diverges: batch stopped at %d, scalar at %d",
			ckAuto.Records, ckOff.Records)
	}

	// Straight-through reference run.
	p, err := ev8pred.New2BcGskew(ev8pred.Config512K())
	if err != nil {
		t.Fatal(err)
	}
	full, err := ev8pred.Run(p, trace.NewSlice(records), ev8pred.Options{Mode: ev8pred.ModeGhist()})
	if err != nil {
		t.Fatal(err)
	}
	// Resume the batch-captured checkpoint onto the scalar path and vice
	// versa: crossing the boundary must still reproduce the full run.
	resume := func(ck *ev8pred.Checkpoint, mode ev8pred.BatchMode) ev8pred.Result {
		q, err := ev8pred.New2BcGskew(ev8pred.Config512K())
		if err != nil {
			t.Fatal(err)
		}
		src := trace.NewSlice(records)
		if err := ev8pred.SkipRecords(src, ck.Records); err != nil {
			t.Fatal(err)
		}
		r, err := ev8pred.ResumeFrom(q, src, ev8pred.Options{Mode: ev8pred.ModeGhist(), Batch: mode}, ck)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if got := resume(ckAuto, ev8pred.BatchOff); !equalResult(got, full) {
		t.Errorf("batch checkpoint + scalar resume %+v != full run %+v", got, full)
	}
	if got := resume(ckOff, ev8pred.BatchAuto); !equalResult(got, full) {
		t.Errorf("scalar checkpoint + batch resume %+v != full run %+v", got, full)
	}
}

// TestBatchZeroAllocsSteadyState gates the allocation discipline of the
// batch paths: whole-run allocation counts at two stream lengths must be
// equal — all scratch (chunk buffers, snapshot arrays, bitsets) is
// per-run, never per-chunk or per-branch.
func TestBatchZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ev8pred.NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := trace.Collect(g, 16384)
	if len(records) < 16384 {
		t.Fatalf("collected only %d records", len(records))
	}

	t.Run("run", func(t *testing.T) {
		runAllocs := func(recs []ev8pred.Branch) float64 {
			return testing.AllocsPerRun(5, func() {
				p, err := ev8pred.New2BcGskew(ev8pred.Config512K())
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ev8pred.Run(p, trace.NewSlice(recs),
					ev8pred.Options{Mode: ev8pred.ModeGhist()}); err != nil {
					t.Fatal(err)
				}
			})
		}
		short := runAllocs(records[:4096])
		long := runAllocs(records)
		if extra := long - short; extra > 0 {
			t.Errorf("batch run loop: %.1f extra allocs for %d extra records, want 0 (short=%.1f long=%.1f)",
				extra, len(records)-4096, short, long)
		}
	})

	t.Run("ensemble", func(t *testing.T) {
		runAllocs := func(recs []ev8pred.Branch) float64 {
			return testing.AllocsPerRun(5, func() {
				factories := []ev8pred.Factory{
					func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config512K()) },
					func() (ev8pred.Predictor, error) { return ev8pred.NewGshare(1<<16, 16) },
					func() (ev8pred.Predictor, error) { return ev8pred.NewBimodal(1 << 14) },
				}
				_, err := ev8pred.RunEnsemble(factories, trace.NewSlice(recs), ev8pred.Options{
					Mode:     ev8pred.ModeGhist(),
					Ensemble: ev8pred.EnsembleOn,
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
		short := runAllocs(records[:4096])
		long := runAllocs(records)
		if extra := long - short; extra > 0 {
			t.Errorf("ensemble batch loop: %.1f extra allocs for %d extra records, want 0 (short=%.1f long=%.1f)",
				extra, len(records)-4096, short, long)
		}
	})
}
