package ev8pred_test

// Differential test for the fused predict/update hot path: every fused
// predictor must produce byte-identical Results whether sim.Run routes it
// through Lookup/UpdateWith or through the plain Predict/Update pair. The
// unfused leg is forced by wrapping the predictor in a type that hides the
// FusedPredictor methods (but still forwards ObserveBlock, which the EV8
// bank sequencer needs). The UpdateDelay > 0 cases prove the snapshot
// survives the commit-delay queue intact.

import (
	"testing"

	"ev8pred"
	"ev8pred/internal/frontend"
	"ev8pred/internal/predictor"
	"ev8pred/internal/sim"
)

// unfused delegates the plain Predictor interface and nothing else, so
// sim.Run's FusedPredictor type assertion fails and the fallback path runs.
type unfused struct{ p ev8pred.Predictor }

func (u *unfused) Predict(info *ev8pred.Info) bool       { return u.p.Predict(info) }
func (u *unfused) Update(info *ev8pred.Info, taken bool) { u.p.Update(info, taken) }
func (u *unfused) Name() string                          { return u.p.Name() }
func (u *unfused) SizeBits() int                         { return u.p.SizeBits() }
func (u *unfused) Reset()                                { u.p.Reset() }

// unfusedObserver additionally forwards the fetch-block stream; without it
// a wrapped EV8 would never advance its bank sequencer.
type unfusedObserver struct {
	unfused
	obs sim.BlockObserver
}

func (u *unfusedObserver) ObserveBlock(b frontend.Block) { u.obs.ObserveBlock(b) }

// hideFused wraps p so only the plain interface is visible.
func hideFused(p ev8pred.Predictor) ev8pred.Predictor {
	if obs, ok := p.(sim.BlockObserver); ok {
		return &unfusedObserver{unfused{p}, obs}
	}
	return &unfused{p}
}

type fusedCase struct {
	name  string
	mode  ev8pred.Mode
	fused bool // whether the raw predictor must implement FusedPredictor
	make  func() (ev8pred.Predictor, error)
}

func fusedRoster() []fusedCase {
	return []fusedCase{
		{"ev8", ev8pred.ModeEV8(), true,
			func() (ev8pred.Predictor, error) { return ev8pred.NewEV8(), nil }},
		{"2bcg-256K", ev8pred.ModeGhist(), true,
			func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config256K()) }},
		{"2bcg-512K", ev8pred.ModeGhist(), true,
			func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config512K()) }},
		{"2bcg-ev8size", ev8pred.ModeGhist(), true,
			func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.ConfigEV8Size()) }},
		{"egskew-partial", ev8pred.ModeGhist(), true,
			func() (ev8pred.Predictor, error) { return ev8pred.NewEGskew(8192, 13, true) }},
		{"egskew-total", ev8pred.ModeGhist(), true,
			func() (ev8pred.Predictor, error) { return ev8pred.NewEGskew(8192, 13, false) }},
		{"gshare", ev8pred.ModeGhist(), true,
			func() (ev8pred.Predictor, error) { return ev8pred.NewGshare(1<<16, 16) }},
		// Unfused control: the wrapper must be an exact no-op for plain
		// predictors too.
		{"bimodal", ev8pred.ModeGhist(), false,
			func() (ev8pred.Predictor, error) { return ev8pred.NewBimodal(1 << 14) }},
	}
}

// runBoth simulates a cold raw predictor (fused path when available) and a
// cold hidden-interface copy (always the fallback path) over one benchmark
// and returns both Results.
func runBoth(t *testing.T, tc fusedCase, bench string, instr int64, delay int) (raw, hidden ev8pred.Result) {
	t.Helper()
	prof, err := ev8pred.BenchmarkByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	opts := ev8pred.Options{Mode: tc.mode, UpdateDelay: delay}
	run := func(p ev8pred.Predictor) ev8pred.Result {
		r, err := ev8pred.RunBenchmark(p, prof, instr, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	p1, err := tc.make()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tc.make()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p1.(predictor.FusedPredictor); ok != tc.fused {
		t.Fatalf("%s: FusedPredictor assertion = %v, want %v", tc.name, ok, tc.fused)
	}
	w := hideFused(p2)
	if _, ok := w.(predictor.FusedPredictor); ok {
		t.Fatalf("%s: hideFused wrapper still satisfies FusedPredictor", tc.name)
	}
	return run(p1), run(w)
}

// TestFusedUnfusedEquivalent runs every predictor over every benchmark via
// both paths with immediate update and asserts identical Results.
func TestFusedUnfusedEquivalent(t *testing.T) {
	for _, tc := range fusedRoster() {
		t.Run(tc.name, func(t *testing.T) {
			for _, prof := range ev8pred.Benchmarks() {
				raw, hidden := runBoth(t, tc, prof.Name, 100_000, 0)
				if raw != hidden {
					t.Errorf("%s/%s: fused %+v != unfused %+v", tc.name, prof.Name, raw, hidden)
				}
				if raw.Branches == 0 {
					t.Errorf("%s/%s: degenerate run (0 branches)", tc.name, prof.Name)
				}
			}
		})
	}
}

// TestFusedUnfusedEquivalentDelayed repeats the comparison under a commit
// delay: the snapshot is carried through sim.Run's pending-update queue for
// 8 branches before training, and the Results must still match exactly.
// For the EV8 this additionally exercises the predictor's internal
// prediction-time snapshot pairing — the bank sequencer has advanced by the
// time the update arrives, so recomputing indices at update time would
// diverge.
func TestFusedUnfusedEquivalentDelayed(t *testing.T) {
	benches := []string{"gcc", "go", "li"}
	for _, tc := range fusedRoster() {
		t.Run(tc.name, func(t *testing.T) {
			for _, bench := range benches {
				for _, delay := range []int{1, 8} {
					raw, hidden := runBoth(t, tc, bench, 100_000, delay)
					if raw != hidden {
						t.Errorf("%s/%s delay=%d: fused %+v != unfused %+v",
							tc.name, bench, delay, raw, hidden)
					}
				}
			}
		})
	}
}

// TestFusedPredictMatchesLookup pins the interface contract directly:
// Predict(info) must equal Lookup(info).Final at every point of a run.
func TestFusedPredictMatchesLookup(t *testing.T) {
	for _, tc := range fusedRoster() {
		if !tc.fused {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.make()
			if err != nil {
				t.Fatal(err)
			}
			fp := p.(predictor.FusedPredictor)
			prof, err := ev8pred.BenchmarkByName("gcc")
			if err != nil {
				t.Fatal(err)
			}
			src, err := ev8pred.NewWorkload(prof, 50_000)
			if err != nil {
				t.Fatal(err)
			}
			// Drive the front end by hand so we can call both entry points
			// on the same information vector before training once.
			tr := frontend.NewTracker(tc.mode)
			if obs, ok := p.(sim.BlockObserver); ok {
				tr.OnBlock(obs.ObserveBlock)
			}
			checked := 0
			for {
				b, ok := src.Next()
				if !ok {
					break
				}
				info, isCond := tr.Process(b)
				if !isCond {
					continue
				}
				s := fp.Lookup(&info)
				if got := p.Predict(&info); got != s.Final {
					t.Fatalf("branch %d: Predict=%v, Lookup.Final=%v", checked, got, s.Final)
				}
				fp.UpdateWith(s, b.Taken)
				checked++
			}
			if checked == 0 {
				t.Fatal("no conditional branches seen")
			}
		})
	}
}
