package ev8pred

import (
	"ev8pred/internal/perf"
	"ev8pred/internal/sim"
)

// Front-end and performance-model facade: run the whole §2 PC-address
// generator (conditional predictor + jump predictor + return-address
// stack + line predictor) and turn the event counts into the paper's
// fetch-level performance estimate (§1: 14-cycle minimum misprediction
// penalty on an 8-wide machine).

type (
	// FrontEndResult extends Result with PC-generation statistics.
	FrontEndResult = sim.FrontEndResult
	// FrontEndConfig sizes the jump predictor, RAS and line predictor.
	FrontEndConfig = sim.FrontEndConfig
	// PerfModel holds the microarchitectural cost parameters.
	PerfModel = perf.Model
	// PerfReport is a performance estimate (cycles, IPC).
	PerfReport = perf.Report
)

// Performance-model presets.
var (
	// PerfEV8 uses the paper's minimum 14-cycle redirect penalty.
	PerfEV8 = perf.EV8
	// PerfEV8Typical uses the "more often around cycle 20" latency.
	PerfEV8Typical = perf.EV8Typical
)

// RunFrontEnd simulates the full PC-address generator over src. A nil
// predictor selects a perfect (oracle) conditional predictor, for
// upper-bound studies. A non-nil error means the source failed
// mid-stream (e.g. a corrupted trace file).
func RunFrontEnd(p Predictor, src Source, opts Options, fecfg FrontEndConfig) (FrontEndResult, error) {
	return sim.RunFrontEnd(p, src, opts, fecfg)
}

// RunFrontEndBenchmark is RunFrontEnd over a named synthetic benchmark.
func RunFrontEndBenchmark(p Predictor, prof Profile, instructions int64, opts Options, fecfg FrontEndConfig) (FrontEndResult, error) {
	return sim.RunFrontEndBenchmark(p, prof, instructions, opts, fecfg)
}

// EstimatePerf applies a performance model to a front-end run. It returns
// an error for degenerate inputs — instructions retired but zero cycles
// attributable to them — so a Report with a nil error is always internally
// consistent (IPC == Instructions/Cycles, no NaN/Inf); see internal/perf.
func EstimatePerf(m PerfModel, r FrontEndResult) (PerfReport, error) {
	return m.Estimate(perf.Inputs{
		Instructions: r.Instructions,
		Blocks:       r.Blocks,
		PCGen:        r.PCGen,
		LineMisses:   r.LineMisses,
	})
}
