// Package ev8pred is a library reproduction of the Alpha EV8 conditional
// branch predictor from "Design Tradeoffs for the Alpha EV8 Conditional
// Branch Predictor" (Seznec, Felix, Krishnan, Sazeides — ISCA 2002),
// together with the baseline predictors, the fetch-front-end model, the
// synthetic SPECINT95-like workload substrate, and the experiment harness
// that regenerates every table and figure of the paper's evaluation.
//
// This root package is the stable public facade: it re-exports the types
// a downstream user needs to build predictors, run simulations and define
// custom schemes, without reaching into internal packages. The runnable
// entry points live in cmd/ (ev8sim, ev8bench, tracegen, traceinfo) and
// examples/.
//
// # Quick start
//
//	p := ev8pred.NewEV8()                       // the 352 Kbit EV8 predictor
//	prof, _ := ev8pred.BenchmarkByName("gcc")   // a synthetic SPECINT95-like workload
//	r, err := ev8pred.RunBenchmark(p, prof, 10_000_000, ev8pred.Options{
//		Mode: ev8pred.ModeEV8(),            // 3-blocks-old lghist + path info
//	})
//	if err != nil {                             // e.g. a corrupted trace source
//		log.Fatal(err)
//	}
//	fmt.Println(r) // misp/KI, accuracy, branch count
//
// # Custom predictors
//
// Implement the Predictor interface (Predict/Update over Info) and pass it
// to Run or RunBenchmark; see examples/custom.
package ev8pred

import (
	"ev8pred/internal/core"
	"ev8pred/internal/ev8"
	"ev8pred/internal/frontend"
	"ev8pred/internal/history"
	"ev8pred/internal/predictor"
	"ev8pred/internal/sim"
	"ev8pred/internal/trace"
	"ev8pred/internal/workload"
)

// Core simulation types.
type (
	// Predictor is a conditional branch predictor (see internal/predictor).
	Predictor = predictor.Predictor
	// Info is the per-branch information vector handed to predictors.
	Info = history.Info
	// Branch is one dynamic control-transfer trace record.
	Branch = trace.Branch
	// Source is a stream of trace records.
	Source = trace.Source
	// Mode selects the information vector the front end materializes.
	Mode = frontend.Mode
	// Options configures a simulation run.
	Options = sim.Options
	// Result summarizes a simulation run (misp/KI, accuracy).
	Result = sim.Result
	// Factory builds one cold predictor instance (ensemble members,
	// simulation cells).
	Factory = sim.Factory
	// EnsembleMode selects per-cell vs single-pass ensemble scheduling.
	EnsembleMode = sim.EnsembleMode
	// BatchSource is a Source that can also deliver records in batches;
	// the simulator uses NextBatch when available to amortize per-record
	// interface-call overhead.
	BatchSource = trace.BatchSource
	// BatchPredictor is a FusedPredictor that can run whole record chunks
	// through each pipeline stage (docs/PERFORMANCE.md, "Batch kernel");
	// 2Bc-gskew, e-gskew and gshare implement it.
	BatchPredictor = predictor.BatchPredictor
	// FusedPredictor is a Predictor with the single-lookup fast path
	// (Lookup/UpdateWith) the simulator prefers when available.
	FusedPredictor = predictor.FusedPredictor
	// BatchMode selects whether eligible runs use the batch kernel.
	BatchMode = sim.BatchMode
	// Profile parameterizes a synthetic benchmark workload.
	Profile = workload.Profile
	// CoreConfig parameterizes a 2Bc-gskew predictor.
	CoreConfig = core.Config
	// EV8Config parameterizes the hardware-constrained EV8 predictor.
	EV8Config = ev8.Config
)

// Information-vector modes (Figure 7 of the paper).
var (
	// ModeGhist is conventional per-branch global history.
	ModeGhist = frontend.ModeGhist
	// ModeLghist is block-compressed history with the path bit.
	ModeLghist = frontend.ModeLghist
	// ModeLghistNoPath is block-compressed history without path info.
	ModeLghistNoPath = frontend.ModeLghistNoPath
	// ModeOldLghist is three-fetch-blocks-old lghist.
	ModeOldLghist = frontend.ModeOldLghist
	// ModeEV8 is the Alpha EV8 information vector.
	ModeEV8 = frontend.ModeEV8
)

// NewEV8 returns the as-shipped 352 Kbit Alpha EV8 predictor. Run it under
// ModeEV8 for the hardware-faithful information vector.
func NewEV8() *ev8.Predictor {
	return ev8.MustNew(ev8.DefaultConfig())
}

// NewEV8WithConfig returns an EV8 predictor with index-function variants.
func NewEV8WithConfig(cfg EV8Config) (*ev8.Predictor, error) {
	return ev8.New(cfg)
}

// New2BcGskew builds an unconstrained 2Bc-gskew predictor from a core
// configuration; see Config256K/Config512K/ConfigEV8Size for the paper's
// presets.
func New2BcGskew(cfg CoreConfig) (*core.Predictor, error) {
	return core.New(cfg)
}

// The paper's named 2Bc-gskew configurations.
var (
	// Config256K is the 4x32K-entry (256 Kbit) predictor of Figure 5.
	Config256K = core.Config256K
	// Config512K is the 4x64K-entry (512 Kbit) predictor of Figures 5-8.
	Config512K = core.Config512K
	// ConfigEV8Size is the Table 1 (352 Kbit) memory configuration.
	ConfigEV8Size = core.ConfigEV8Size
)

// Benchmarks returns the eight SPECINT95-like synthetic workload profiles.
func Benchmarks() []Profile { return workload.Benchmarks() }

// BenchmarkByName returns the named workload profile.
func BenchmarkByName(name string) (Profile, error) { return workload.ByName(name) }

// NewWorkload builds a trace source for a profile with an instruction
// budget (<= 0 means unbounded).
func NewWorkload(prof Profile, instructions int64) (Source, error) {
	return workload.New(prof, instructions)
}

// ErrSource is a Source that can fail mid-stream; after Next returns
// false, Err distinguishes a clean end of stream from a decode error.
// File-backed trace readers implement it, and Run checks it, so corrupted
// input cannot masquerade as a short-but-valid run.
type ErrSource = trace.ErrSource

// ErrBadTraceFormat is the sentinel every trace decode failure wraps:
// bad magic, truncation, CRC mismatch, footer count mismatch, or an
// out-of-range field. Match with errors.Is.
var ErrBadTraceFormat = trace.ErrBadFormat

// SourceErr returns the deferred stream error of src if it exposes one
// (implements ErrSource), and nil otherwise.
func SourceErr(src Source) error { return trace.SourceErr(src) }

// Run simulates a predictor over an arbitrary branch source. A non-nil
// error means the source failed mid-stream (e.g. a corrupted trace file);
// the returned Result covers the branches processed before the failure
// and must not be treated as a complete run.
func Run(p Predictor, src Source, opts Options) (Result, error) { return sim.Run(p, src, opts) }

// RunBenchmark simulates a predictor over a synthetic benchmark.
func RunBenchmark(p Predictor, prof Profile, instructions int64, opts Options) (Result, error) {
	return sim.RunBenchmark(p, prof, instructions, opts)
}

// Ensemble scheduling modes (see RunEnsemble and Options.Ensemble).
const (
	// EnsembleAuto groups cells into per-workload ensembles only when the
	// amortization can win (the default).
	EnsembleAuto = sim.EnsembleAuto
	// EnsembleOn always groups cells that share a workload.
	EnsembleOn = sim.EnsembleOn
	// EnsembleOff always simulates cells independently.
	EnsembleOff = sim.EnsembleOff
)

// Batch scheduling modes (see Options.Batch). Results are byte-identical
// in every mode; the knob exists for differential testing and debugging.
const (
	// BatchAuto routes eligible runs through the batch kernel (default).
	BatchAuto = sim.BatchAuto
	// BatchOff forces the scalar fused path.
	BatchOff = sim.BatchOff
	// BatchOn requires the batch kernel: ineligible runs fail with
	// ErrBatchIneligible instead of silently falling back to scalar.
	BatchOn = sim.BatchOn
)

// ErrBatchIneligible reports a BatchOn run that cannot take the batch
// kernel; the wrapping error names the disqualifying condition.
var ErrBatchIneligible = sim.ErrBatchIneligible

// RunEnsemble simulates every factory-built predictor over ONE shared
// pass of src: the stream is advanced once and its front-end state
// computed once, shared by all members. Results (one per factory, in
// factory order) are byte-identical to running each member through Run
// over its own copy of the stream.
func RunEnsemble(factories []Factory, src Source, opts Options) ([]Result, error) {
	return sim.RunEnsemble(factories, src, opts)
}

// RunEnsembleBenchmark runs an ensemble over a synthetic benchmark.
func RunEnsembleBenchmark(factories []Factory, prof Profile, instructions int64, opts Options) ([]Result, error) {
	return sim.RunEnsembleBenchmark(factories, prof, instructions, opts)
}

// Checkpoint / resume (docs/CACHING.md). Predictors that implement
// Snapshotter (the EV8 model, 2Bc-gskew, e-gskew and gshare do) can stop
// a run at a branch count, serialize the full simulation state, and
// continue later bit-identically.
type (
	// Snapshotter is implemented by predictors whose internal state can
	// be serialized and restored exactly.
	Snapshotter = predictor.Snapshotter
	// ConfigKeyer is implemented by predictors that can describe their
	// configuration as a canonical string for result caching.
	ConfigKeyer = predictor.ConfigKeyer
	// Checkpoint is the serializable mid-run state of a simulation.
	Checkpoint = sim.Checkpoint
)

// RunCheckpoint simulates like Run but additionally captures a resumable
// Checkpoint of the final state; bound the stopping point with
// Options.MaxBranches. The predictor must implement Snapshotter.
func RunCheckpoint(p Predictor, src Source, opts Options) (Result, *Checkpoint, error) {
	return sim.RunCheckpoint(p, src, opts)
}

// ResumeFrom restores ck into p and continues the run over src, which
// must already be positioned past the checkpointed records (SkipRecords).
// The combined run is bit-identical to one uninterrupted Run.
func ResumeFrom(p Predictor, src Source, opts Options, ck *Checkpoint) (Result, error) {
	return sim.ResumeFrom(p, src, opts, ck)
}

// SkipRecords advances src past n records, surfacing a typed error if
// the stream ends or fails first.
func SkipRecords(src Source, n int64) error { return sim.SkipRecords(src, n) }

// RunWarmEnsembleBenchmark simulates the first warmBranches of a
// benchmark once with a factory-built predictor, snapshots the warm
// state, and fans k ensemble members out from copies of it — the
// ensemble engine's amortization applied to warmup state.
func RunWarmEnsembleBenchmark(factory Factory, k int, prof Profile, instructions, warmBranches int64, opts Options) ([]Result, error) {
	return sim.RunWarmEnsembleBenchmark(factory, k, prof, instructions, warmBranches, opts)
}
