//go:build !race

package ev8pred_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
