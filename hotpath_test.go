package ev8pred_test

// Hot-path performance gates: per-predictor predict+update microbenchmarks
// over prerecorded events (the workload generator and front end are out of
// the measured loop), and a hard zero-allocation gate for the paper's hot
// predictors. cmd/benchbaseline runs the same roster programmatically to
// write BENCH_baseline.json.

import (
	"testing"

	"ev8pred"
	"ev8pred/internal/hotbench"
	"ev8pred/internal/predictor"
	"ev8pred/internal/trace"
)

const hotEvents = 4096

// TestHotPathZeroAllocs asserts that a steady-state branch allocates
// nothing — on the fused Lookup/UpdateWith path and on the plain
// Predict/Update fallback — for every gated predictor (EV8 and the
// 2Bc-gskew presets). A single heap escape on this path costs more than
// the prediction itself; this is the acceptance gate that keeps it out.
func TestHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	for _, c := range hotbench.Cases() {
		if !c.Gated {
			continue
		}
		events, err := hotbench.Collect(c.Mode, "gcc", hotEvents)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name, func(t *testing.T) {
			p, err := c.New()
			if err != nil {
				t.Fatal(err)
			}
			fp, ok := p.(predictor.FusedPredictor)
			if !ok {
				t.Fatalf("%s: gated predictor does not implement FusedPredictor", c.Name)
			}
			// Warm once so any lazy one-time work is done before counting.
			hotbench.ReplayFused(fp, events)
			if allocs := testing.AllocsPerRun(3, func() {
				hotbench.ReplayFused(fp, events)
			}); allocs != 0 {
				t.Errorf("%s fused path: %.1f allocs per %d branches, want 0",
					c.Name, allocs, len(events))
			}
			if allocs := testing.AllocsPerRun(3, func() {
				hotbench.ReplayUnfused(p, events)
			}); allocs != 0 {
				t.Errorf("%s unfused path: %.1f allocs per %d branches, want 0",
					c.Name, allocs, len(events))
			}
		})
	}
}

// TestDelayedUpdateZeroAllocsSteadyState gates the commit-delay queue:
// with UpdateDelay > 0 the pending updates must live in the fixed ring
// sim.Run allocates once, not in a slice that grows as queue[1:] pops
// retain the backing array. A full sim.Run carries constant setup cost
// (predictor tables, tracker, the ring itself), so the gate compares
// whole-run allocation counts at two stream lengths: equal totals mean
// the marginal branches allocated nothing.
func TestDelayedUpdateZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ev8pred.NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	branches := trace.Collect(g, 4096)
	if len(branches) < 4096 {
		t.Fatalf("collected only %d branches", len(branches))
	}

	runAllocs := func(recs []ev8pred.Branch) float64 {
		return testing.AllocsPerRun(5, func() {
			p := ev8pred.NewEV8()
			_, err := ev8pred.Run(p, trace.NewSlice(recs), ev8pred.Options{
				Mode:        ev8pred.ModeEV8(),
				UpdateDelay: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	short := runAllocs(branches[:1024])
	long := runAllocs(branches)
	if extra := long - short; extra > 0 {
		t.Errorf("delayed-update path: %.1f extra allocs for %d extra branches, want 0 (short=%.1f long=%.1f)",
			extra, len(branches)-1024, short, long)
	}
}

// TestBatchKernelZeroAllocs gates the kernels themselves: a staged-replay
// pass through LookupBatch/UpdateBatch must not allocate for any
// Batch-marked roster entry.
func TestBatchKernelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	for _, c := range hotbench.Cases() {
		if !c.Batch {
			continue
		}
		events, err := hotbench.Collect(c.Mode, "gcc", hotEvents)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name, func(t *testing.T) {
			p, err := c.New()
			if err != nil {
				t.Fatal(err)
			}
			bp, ok := p.(predictor.BatchPredictor)
			if !ok {
				t.Fatalf("%s: Batch-marked predictor does not implement BatchPredictor", c.Name)
			}
			run := hotbench.NewBatchRun(events, 0)
			run.Replay(bp) // warm once before counting
			if allocs := testing.AllocsPerRun(3, func() {
				run.Replay(bp)
			}); allocs != 0 {
				t.Errorf("%s batch kernels: %.1f allocs per %d branches, want 0",
					c.Name, allocs, run.Len())
			}
		})
	}
}

// BenchmarkPredictUpdate measures raw per-branch predictor cost: one
// sub-benchmark per roster entry, replaying prerecorded gcc events through
// the same code path sim.Run uses (fused when available). ns/op is per
// branch; compare against BENCH_baseline.json.
func BenchmarkPredictUpdate(b *testing.B) {
	for _, c := range hotbench.Cases() {
		events, err := hotbench.Collect(c.Mode, "gcc", hotEvents)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			p, err := c.New()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(events) {
				n := len(events)
				if rem := b.N - done; rem < n {
					n = rem
				}
				hotbench.Replay(p, events[:n])
			}
		})
	}
}

// BenchmarkPredictUpdateBatch is the batch-kernel twin: the same events
// pre-staged into SoA chunks, replayed through LookupBatch/UpdateBatch.
// ns/op is per branch; the ratio to BenchmarkPredictUpdate's matching
// entry is the kernel speedup cmd/benchkernel reports.
func BenchmarkPredictUpdateBatch(b *testing.B) {
	for _, c := range hotbench.Cases() {
		if !c.Batch {
			continue
		}
		events, err := hotbench.Collect(c.Mode, "gcc", hotEvents)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			p, err := c.New()
			if err != nil {
				b.Fatal(err)
			}
			bp, ok := p.(predictor.BatchPredictor)
			if !ok {
				b.Fatalf("%s does not implement BatchPredictor", c.Name)
			}
			run := hotbench.NewBatchRun(events, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += run.Len() {
				run.Replay(bp)
			}
		})
	}
}
