package ev8pred_test

// Hot-path performance gates: per-predictor predict+update microbenchmarks
// over prerecorded events (the workload generator and front end are out of
// the measured loop), and a hard zero-allocation gate for the paper's hot
// predictors. cmd/benchbaseline runs the same roster programmatically to
// write BENCH_baseline.json.

import (
	"testing"

	"ev8pred/internal/hotbench"
	"ev8pred/internal/predictor"
)

const hotEvents = 4096

// TestHotPathZeroAllocs asserts that a steady-state branch allocates
// nothing — on the fused Lookup/UpdateWith path and on the plain
// Predict/Update fallback — for every gated predictor (EV8 and the
// 2Bc-gskew presets). A single heap escape on this path costs more than
// the prediction itself; this is the acceptance gate that keeps it out.
func TestHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	for _, c := range hotbench.Cases() {
		if !c.Gated {
			continue
		}
		events, err := hotbench.Collect(c.Mode, "gcc", hotEvents)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name, func(t *testing.T) {
			p, err := c.New()
			if err != nil {
				t.Fatal(err)
			}
			fp, ok := p.(predictor.FusedPredictor)
			if !ok {
				t.Fatalf("%s: gated predictor does not implement FusedPredictor", c.Name)
			}
			// Warm once so any lazy one-time work is done before counting.
			hotbench.ReplayFused(fp, events)
			if allocs := testing.AllocsPerRun(3, func() {
				hotbench.ReplayFused(fp, events)
			}); allocs != 0 {
				t.Errorf("%s fused path: %.1f allocs per %d branches, want 0",
					c.Name, allocs, len(events))
			}
			if allocs := testing.AllocsPerRun(3, func() {
				hotbench.ReplayUnfused(p, events)
			}); allocs != 0 {
				t.Errorf("%s unfused path: %.1f allocs per %d branches, want 0",
					c.Name, allocs, len(events))
			}
		})
	}
}

// BenchmarkPredictUpdate measures raw per-branch predictor cost: one
// sub-benchmark per roster entry, replaying prerecorded gcc events through
// the same code path sim.Run uses (fused when available). ns/op is per
// branch; compare against BENCH_baseline.json.
func BenchmarkPredictUpdate(b *testing.B) {
	for _, c := range hotbench.Cases() {
		events, err := hotbench.Collect(c.Mode, "gcc", hotEvents)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			p, err := c.New()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(events) {
				n := len(events)
				if rem := b.N - done; rem < n {
					n = rem
				}
				hotbench.Replay(p, events[:n])
			}
		})
	}
}
