package ev8pred_test

// Differential suite for the EV8 batch path (docs/PERFORMANCE.md, "Batch
// kernel"): the EV8 model is a BlockObserver — its §6.2 bank sequencer
// advances on every fetch block, between branches — so its batch
// eligibility rides the batched block contract
// (predictor.BlockBatchObserver): the staged front-end walk captures the
// sequencer-dependent bank per branch at the exact scalar interleaving
// point, and the chunked index/resolve passes must reproduce the scalar
// fused path byte for byte — Result, attribution Stats (including the
// §6.2 physical-bank and fetch-cycle counters), snapshots and checkpoint
// record consumption.

import (
	"bytes"
	"errors"
	"testing"

	"ev8pred"
	"ev8pred/internal/predictor"
	"ev8pred/internal/trace"
)

type ev8BatchCase struct {
	name  string
	batch bool // implements predictor.BatchPredictor
	make  func() (ev8pred.Predictor, error)
}

// ev8BatchRoster is the EV8-mode roster: the as-shipped EV8 (both
// wordline variants — their staged index functions differ), the
// unconstrained ConfigEV8Size 2Bc-gskew, and the §9 cascade. The cascade
// is deliberately not a batch predictor: solo runs must fall back to
// scalar under BatchAuto, and ensembles must replay it per branch
// between its chunked siblings.
func ev8BatchRoster() []ev8BatchCase {
	addrWL := ev8pred.EV8Config{PartialUpdate: true}
	addrWL.Index.AddressOnlyWordline = true
	addrWL.Name = "ev8-addrwl"
	return []ev8BatchCase{
		{"ev8", true, func() (ev8pred.Predictor, error) { return ev8pred.NewEV8(), nil }},
		{"ev8-addrwl", true, func() (ev8pred.Predictor, error) { return ev8pred.NewEV8WithConfig(addrWL) }},
		{"2bcg-ev8size", true, func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.ConfigEV8Size()) }},
		{"cascade", false, func() (ev8pred.Predictor, error) {
			backup, err := ev8pred.NewPerceptron(256, 12)
			if err != nil {
				return nil, err
			}
			return ev8pred.NewCascade(ev8pred.NewEV8(), backup, 4096)
		}},
	}
}

// runEV8BatchPair runs one cold predictor per schedule — BatchAuto and
// BatchOff — over the same benchmark under the EV8 front end.
func runEV8BatchPair(t *testing.T, tc ev8BatchCase, bench string, instr int64, opts ev8pred.Options) (auto, off ev8pred.Result) {
	t.Helper()
	prof, err := ev8pred.BenchmarkByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode ev8pred.BatchMode) ev8pred.Result {
		p, err := tc.make()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.(predictor.BatchPredictor); ok != tc.batch {
			t.Fatalf("%s: BatchPredictor = %v, roster says %v", tc.name, ok, tc.batch)
		}
		o := opts
		o.Mode = ev8pred.ModeEV8()
		o.Batch = mode
		r, err := ev8pred.RunBenchmark(p, prof, instr, o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	return run(ev8pred.BatchAuto), run(ev8pred.BatchOff)
}

// TestEV8BatchScalarEquivalent is the full matrix: the EV8-mode roster
// (including the non-batch cascade, whose BatchAuto runs must decline the
// kernel and still match), every benchmark, Collect on and off. Collect
// runs additionally pin the §6.2 scheduling counters: staged block
// observation must see every block and keep the physical banks
// conflict-free, exactly like scalar.
func TestEV8BatchScalarEquivalent(t *testing.T) {
	for _, tc := range ev8BatchRoster() {
		t.Run(tc.name, func(t *testing.T) {
			for _, prof := range ev8pred.Benchmarks() {
				for _, collect := range []bool{false, true} {
					opts := ev8pred.Options{Collect: collect}
					auto, off := runEV8BatchPair(t, tc, prof.Name, 50_000, opts)
					if !equalResult(auto, off) {
						t.Errorf("%s collect=%v: batch %+v != scalar %+v",
							prof.Name, collect, auto, off)
					}
					if auto.Branches == 0 {
						t.Errorf("%s: degenerate run (0 branches)", prof.Name)
					}
					// §6.2 scheduling counters exist on the instrumented EV8
					// variants only (the cascade is not stats-instrumented).
					if !collect || tc.name != "ev8" && tc.name != "ev8-addrwl" {
						continue
					}
					if auto.Stats == nil {
						t.Errorf("%s: Collect run returned no Stats", prof.Name)
						continue
					}
					if n, ok := auto.Stats.Get("blocks_observed"); !ok || n == 0 {
						t.Errorf("%s: blocks_observed = %d, %v; want > 0", prof.Name, n, ok)
					}
					if n, ok := auto.Stats.Get("phys_bank_conflicts"); !ok || n != 0 {
						t.Errorf("%s: phys_bank_conflicts = %d, %v; want 0", prof.Name, n, ok)
					}
				}
			}
		})
	}
}

// TestEV8BatchDelayEquivalent pins the fallback: commit delay keeps the
// scalar path (BatchAuto declines), and results stay identical.
func TestEV8BatchDelayEquivalent(t *testing.T) {
	tc := ev8BatchRoster()[0]
	for _, delay := range []int{1, 8} {
		opts := ev8pred.Options{UpdateDelay: delay}
		auto, off := runEV8BatchPair(t, tc, "gcc", 50_000, opts)
		if !equalResult(auto, off) {
			t.Errorf("delay=%d: batch %+v != scalar %+v", delay, auto, off)
		}
	}
}

// TestEV8BatchWarmupEquivalent pins warmup lane masking under the EV8
// front end at boundaries that land mid-chunk and mid-word.
func TestEV8BatchWarmupEquivalent(t *testing.T) {
	tc := ev8BatchRoster()[0]
	for _, warmup := range []int64{1, 63, 64, 1000, 1025, 5000} {
		opts := ev8pred.Options{Warmup: warmup}
		auto, off := runEV8BatchPair(t, tc, "gcc", 100_000, opts)
		if !equalResult(auto, off) {
			t.Errorf("warmup=%d: batch %+v != scalar %+v", warmup, auto, off)
		}
	}
}

// TestEV8BatchMaxBranchesEquivalent pins the fill sizing: a branch budget
// landing mid-chunk or mid-word must measure the same branches on both
// schedules.
func TestEV8BatchMaxBranchesEquivalent(t *testing.T) {
	tc := ev8BatchRoster()[0]
	for _, max := range []int64{1, 100, 1023, 1024, 1500, 4096} {
		opts := ev8pred.Options{MaxBranches: max}
		auto, off := runEV8BatchPair(t, tc, "go", 10_000_000, opts)
		if !equalResult(auto, off) {
			t.Errorf("max=%d: batch %+v != scalar %+v", max, auto, off)
		}
		if auto.Branches != max {
			t.Errorf("max=%d: run measured %d branches", max, auto.Branches)
		}
	}
}

// TestEV8BatchOnEligibility pins the BatchOn contract on the EV8 surface:
// an eligible EV8 run takes the kernel, and each disqualifying condition
// fails with ErrBatchIneligible instead of a silent scalar fallback.
func TestEV8BatchOnEligibility(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	run := func(p ev8pred.Predictor, opts ev8pred.Options) error {
		opts.Mode = ev8pred.ModeEV8()
		opts.Batch = ev8pred.BatchOn
		_, err := ev8pred.RunBenchmark(p, prof, 20_000, opts)
		return err
	}
	if err := run(ev8pred.NewEV8(), ev8pred.Options{}); err != nil {
		t.Errorf("eligible EV8 run rejected under BatchOn: %v", err)
	}
	if err := run(ev8pred.NewEV8(), ev8pred.Options{UpdateDelay: 1}); !errors.Is(err, ev8pred.ErrBatchIneligible) {
		t.Errorf("delayed BatchOn run: got %v, want ErrBatchIneligible", err)
	}
	cascade := ev8BatchRoster()[3]
	p, err := cascade.make()
	if err != nil {
		t.Fatal(err)
	}
	if err := run(p, ev8pred.Options{}); !errors.Is(err, ev8pred.ErrBatchIneligible) {
		t.Errorf("cascade BatchOn run: got %v, want ErrBatchIneligible", err)
	}
}

// TestEV8EnsembleBatchScalarEquivalent covers the ensemble twin under the
// EV8 front end: the batch-capable members (EV8 via staged banks, the
// unconstrained 2Bc-gskew via the plain kernel) ride the chunked
// schedule, the cascade rides the per-branch replay — against BatchOff
// and against independent per-cell runs.
func TestEV8EnsembleBatchScalarEquivalent(t *testing.T) {
	roster := ev8BatchRoster()
	factories := make([]ev8pred.Factory, len(roster))
	for i, c := range roster {
		factories[i] = c.make
	}
	for _, bench := range []string{"gcc", "li"} {
		for _, collect := range []bool{false, true} {
			prof, err := ev8pred.BenchmarkByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			runEns := func(mode ev8pred.BatchMode) []ev8pred.Result {
				opts := ev8pred.Options{Mode: ev8pred.ModeEV8(), Collect: collect,
					Ensemble: ev8pred.EnsembleOn, Batch: mode}
				rs, err := ev8pred.RunEnsembleBenchmark(factories, prof, 200_000, opts)
				if err != nil {
					t.Fatal(err)
				}
				return rs
			}
			auto, off := runEns(ev8pred.BatchAuto), runEns(ev8pred.BatchOff)
			for k, tc := range roster {
				if !equalResult(auto[k], off[k]) {
					t.Errorf("%s collect=%v member %s: batch %+v != scalar %+v",
						bench, collect, tc.name, auto[k], off[k])
				}
				p, err := tc.make()
				if err != nil {
					t.Fatal(err)
				}
				solo, err := ev8pred.RunBenchmark(p, prof, 200_000,
					ev8pred.Options{Mode: ev8pred.ModeEV8(), Collect: collect})
				if err != nil {
					t.Fatal(err)
				}
				if !equalResult(auto[k], solo) {
					t.Errorf("%s collect=%v member %s: ensemble batch %+v != solo %+v",
						bench, collect, tc.name, auto[k], solo)
				}
			}
		}
	}
}

// TestEV8BatchCheckpointEquivalent pins record-consumption parity for the
// EV8 model: checkpoints captured on either schedule must agree on
// Records and state, and resuming across the path boundary must
// reproduce the uninterrupted run — the §6.2 sequencer state serialized
// at the stop point is the same either way.
func TestEV8BatchCheckpointEquivalent(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ev8pred.NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := trace.Collect(g, 30_000)
	const stop = 7_777 // mid-chunk, mid-word
	capture := func(mode ev8pred.BatchMode) (ev8pred.Result, *ev8pred.Checkpoint) {
		opts := ev8pred.Options{Mode: ev8pred.ModeEV8(), MaxBranches: stop, Batch: mode}
		r, ck, err := ev8pred.RunCheckpoint(ev8pred.NewEV8(), trace.NewSlice(records), opts)
		if err != nil {
			t.Fatal(err)
		}
		return r, ck
	}
	rAuto, ckAuto := capture(ev8pred.BatchAuto)
	rOff, ckOff := capture(ev8pred.BatchOff)
	if !equalResult(rAuto, rOff) {
		t.Fatalf("checkpoint-run results diverge: %+v vs %+v", rAuto, rOff)
	}
	if ckAuto.Records != ckOff.Records {
		t.Fatalf("record consumption diverges: batch stopped at %d, scalar at %d",
			ckAuto.Records, ckOff.Records)
	}

	full, err := ev8pred.Run(ev8pred.NewEV8(), trace.NewSlice(records),
		ev8pred.Options{Mode: ev8pred.ModeEV8()})
	if err != nil {
		t.Fatal(err)
	}
	resume := func(ck *ev8pred.Checkpoint, mode ev8pred.BatchMode) ev8pred.Result {
		src := trace.NewSlice(records)
		if err := ev8pred.SkipRecords(src, ck.Records); err != nil {
			t.Fatal(err)
		}
		r, err := ev8pred.ResumeFrom(ev8pred.NewEV8(), src,
			ev8pred.Options{Mode: ev8pred.ModeEV8(), Batch: mode}, ck)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if got := resume(ckAuto, ev8pred.BatchOff); !equalResult(got, full) {
		t.Errorf("batch checkpoint + scalar resume %+v != full run %+v", got, full)
	}
	if got := resume(ckOff, ev8pred.BatchAuto); !equalResult(got, full) {
		t.Errorf("scalar checkpoint + batch resume %+v != full run %+v", got, full)
	}
}

// TestEV8BatchZeroAllocsSteadyState gates the allocation discipline of
// the EV8 batch paths: whole-run allocation counts at two stream lengths
// must be equal — the staged bank buffers, like all batch scratch, are
// per-run, never per-chunk or per-branch.
func TestEV8BatchZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ev8pred.NewWorkload(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := trace.Collect(g, 16384)
	if len(records) < 16384 {
		t.Fatalf("collected only %d records", len(records))
	}

	t.Run("run", func(t *testing.T) {
		runAllocs := func(recs []ev8pred.Branch) float64 {
			return testing.AllocsPerRun(5, func() {
				if _, err := ev8pred.Run(ev8pred.NewEV8(), trace.NewSlice(recs),
					ev8pred.Options{Mode: ev8pred.ModeEV8(), Batch: ev8pred.BatchOn}); err != nil {
					t.Fatal(err)
				}
			})
		}
		short := runAllocs(records[:4096])
		long := runAllocs(records)
		if extra := long - short; extra > 0 {
			t.Errorf("EV8 batch run loop: %.1f extra allocs for %d extra records, want 0 (short=%.1f long=%.1f)",
				extra, len(records)-4096, short, long)
		}
	})

	t.Run("ensemble", func(t *testing.T) {
		roster := ev8BatchRoster()
		runAllocs := func(recs []ev8pred.Branch) float64 {
			return testing.AllocsPerRun(5, func() {
				factories := make([]ev8pred.Factory, len(roster))
				for i, c := range roster {
					factories[i] = c.make
				}
				_, err := ev8pred.RunEnsemble(factories, trace.NewSlice(recs), ev8pred.Options{
					Mode:     ev8pred.ModeEV8(),
					Ensemble: ev8pred.EnsembleOn,
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
		short := runAllocs(records[:4096])
		long := runAllocs(records)
		if extra := long - short; extra > 0 {
			t.Errorf("EV8 ensemble batch loop: %.1f extra allocs for %d extra records, want 0 (short=%.1f long=%.1f)",
				extra, len(records)-4096, short, long)
		}
	})
}

// FuzzEV8BatchBlockBoundaries drives random thread-interleaved record
// streams through both schedules of the EV8 run. The staged front-end
// walk must form exactly the scalar fetch-block boundaries — every
// divergence is visible in the §6 counters (blocks_observed,
// fetch_cycles, phys_bank_use_k), the mispredict counts (bank
// assignment feeds every index), and the serialized sequencer state.
func FuzzEV8BatchBlockBoundaries(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add(bytes.Repeat([]byte{0x81, 0x05, 0x11, 0x42, 0x03, 0x3f, 0x07, 0xc0}, 64))
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x80, 0x20}, 600)) // one hot thread
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 16384 {
			data = data[:16384]
		}
		// Decode 4 bytes per record, keeping the stream's address
		// invariant (PC = previous NextPC + Gap*4) per thread so the
		// front end forms realistic fetch blocks.
		var nextPC [4]uint64
		for i := range nextPC {
			nextPC[i] = 0x10_0000 + uint64(i)<<20
		}
		var records []ev8pred.Branch
		for i := 0; i+4 <= len(data); i += 4 {
			thread := int(data[i] & 3)
			kind := trace.Cond
			if data[i]>>2&7 == 7 {
				kind = trace.Jump
			}
			taken := data[i]&0x80 != 0 || kind != trace.Cond
			gap := int(data[i+1] & 0x3f)
			pc := nextPC[thread] + uint64(gap)*4
			target := pc + 4 + uint64(data[i+2])*4
			if data[i+3]&1 == 1 && uint64(data[i+2])*4 < pc {
				target = pc - uint64(data[i+2])*4 // backward branch
			}
			b := ev8pred.Branch{PC: pc, Target: target, Taken: taken,
				Gap: gap, Kind: kind, Thread: thread}
			nextPC[thread] = b.NextPC()
			records = append(records, b)
		}
		run := func(mode ev8pred.BatchMode) (ev8pred.Result, []byte) {
			p := ev8pred.NewEV8()
			r, err := ev8pred.Run(p, trace.NewSlice(records),
				ev8pred.Options{Mode: ev8pred.ModeEV8(), Collect: true, Batch: mode})
			if err != nil {
				t.Fatal(err)
			}
			return r, p.SnapshotState()
		}
		rBatch, sBatch := run(ev8pred.BatchAuto)
		rScalar, sScalar := run(ev8pred.BatchOff)
		if !equalResult(rBatch, rScalar) {
			t.Errorf("results diverge over %d records: batch %+v != scalar %+v",
				len(records), rBatch, rScalar)
		}
		if !bytes.Equal(sBatch, sScalar) {
			t.Errorf("predictor state diverges over %d records: staged block walk broke the sequencer lockstep",
				len(records))
		}
	})
}
