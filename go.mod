module ev8pred

go 1.22
