# Convenience targets for the ev8pred repository. Everything is plain
# `go` underneath; the targets just encode the common invocations.

GO ?= go

.PHONY: all build vet test race bench check report fuzz examples clean

all: build vet test

# The full gate CI runs: static checks, build, the test suite under the
# race detector, and a one-iteration benchmark smoke so the testing.B
# harness cannot rot.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -bench=Table1 -benchtime=1x -run '^$$' .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure plus predictor
# throughput; -benchmem reports allocation behavior.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (10M instructions per
# benchmark; the paper's full scale is -instructions 100000000).
report:
	$(GO) run ./cmd/ev8bench -experiment all -o bench_report.txt

# Short fuzz sessions over the trace codec.
fuzz:
	$(GO) test -fuzz FuzzReader -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/trace/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compare
	$(GO) run ./examples/custom
	$(GO) run ./examples/smt
	$(GO) run ./examples/frontend

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
