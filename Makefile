# Convenience targets for the ev8pred repository. Everything is plain
# `go` underneath; the targets just encode the common invocations.

GO ?= go
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build vet staticcheck test race bench bench-baseline bench-ensemble bench-kernel check report fuzz faultinject resume shard-gate serve-gate examples clean

all: build vet test

# The full gate CI runs: static checks, build, the test suite under the
# race detector, the hot-path zero-allocation gates (without -race, where
# allocation accounting is exact), the trace fault-injection suite, a
# short decoder fuzz smoke, the ensemble differential suite (single-pass
# ensemble results must be byte-identical to per-cell runs), the
# resume-equivalence and cache-correctness suites (checkpointed-and-
# resumed runs and cache hits must be byte-identical to straight
# recomputation), the sharded-sweep gate (split/merge byte-identical to
# single-process, see shard-gate), the batch-kernel differential suite
# (runs routed through LookupBatch/UpdateBatch — including the EV8 model
# via the batched block contract — must be byte-identical to the scalar
# fused path, with an EV8 block-boundary fuzz smoke), a snapshot-decode
# fuzz smoke, and benchmark smokes so neither
# the testing.B harness nor the per-predictor microbenchmarks can rot.
check:
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestHotPathZeroAllocs|TestDelayedUpdateZeroAllocsSteadyState|TestEnsembleZeroAllocsSteadyState|TestBatchZeroAllocsSteadyState|TestBatchKernelZeroAllocs|TestEV8BatchZeroAllocsSteadyState' -count=1 .
	$(GO) test -run 'TestEnsemble' -count=1 . ./internal/sim/
	$(GO) test -run 'TestBatch|TestEV8Batch|TestEV8Ensemble|TestStagedIndex|TestLookupBatch' -count=1 . ./internal/core/ ./internal/ev8/ ./internal/predictor/... ./internal/trace/
	$(GO) test -fuzz FuzzEV8BatchBlockBoundaries -fuzztime 30s -run '^$$' .
	$(GO) test -run 'TestFault' -count=1 ./internal/trace/faultinject/
	$(GO) test -fuzz FuzzReader -fuzztime 30s -run '^$$' ./internal/trace/
	$(GO) test -run 'TestResume|TestWarmEnsemble' -count=1 .
	$(GO) test -run 'TestCache|TestSweepWarmCacheZeroWork|TestUncacheable|TestSnapshotMutants|TestCheckpointMutants' -count=1 .
	$(GO) test -count=1 ./internal/cache/ ./internal/snapshot/
	$(MAKE) shard-gate
	$(MAKE) serve-gate
	$(GO) test -fuzz FuzzSnapshotDecode -fuzztime 30s -run '^$$' .
	$(GO) test -bench=Table1 -benchtime=1x -run '^$$' .
	$(GO) test -bench=PredictUpdate -benchtime=100x -run '^$$' .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet, pinned so results are reproducible.
# Prefers a staticcheck binary on PATH; otherwise fetches the pinned
# version through `go run`, probing with -version first so a missing
# module proxy (offline/sandboxed builds) degrades to a loud skip
# instead of failing the gate. CI installs the pinned binary before
# `make check`, so the offline skip can never hide findings there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... ; \
	else \
		echo "staticcheck: pinned $(STATICCHECK_VERSION) unavailable (no binary on PATH, module proxy unreachable); skipping" ; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure plus predictor
# throughput; -benchmem reports allocation behavior.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the machine-readable hot-path throughput snapshot (per-predictor
# branches/sec and allocs/branch, plus the end-to-end Table 1 EV8 loop);
# see docs/PERFORMANCE.md for how the numbers are defined and compared.
bench-baseline:
	$(GO) run ./cmd/benchbaseline -o BENCH_baseline.json

# Refresh the ensemble-engine snapshot: suite-level ns/branch for a
# multi-configuration sweep under the per-cell and single-pass ensemble
# schedules at equal worker counts, plus the resulting speedup (see
# docs/PERFORMANCE.md, "Ensemble execution").
bench-ensemble:
	$(GO) run ./cmd/benchensemble -o BENCH_ensemble.json

# Refresh the batch-kernel snapshot: scalar vs batch ns/branch for every
# BatchPredictor roster entry, with speedups against the committed
# BENCH_baseline.json reference (see docs/PERFORMANCE.md, "Batch kernel").
bench-kernel:
	$(GO) run ./cmd/benchkernel -o BENCH_kernel.json

# Regenerate every table and figure of the paper (10M instructions per
# benchmark; the paper's full scale is -instructions 100000000).
report:
	$(GO) run ./cmd/ev8bench -experiment all -o bench_report.txt

# Short fuzz sessions over the trace codec, the fault-injection mutant
# space, and the snapshot/checkpoint wire format.
fuzz:
	$(GO) test -fuzz FuzzReader -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzMutatedTrace -fuzztime 30s ./internal/trace/faultinject/
	$(GO) test -fuzz FuzzSnapshotDecode -fuzztime 30s -run '^$$' .

# Resume-equivalence and cache-correctness differentials: every
# Snapshotter family checkpointed, serialized, resumed and compared
# bit-for-bit against straight-through runs, plus the result-cache
# hit/near-miss/corruption/zero-work suites.
resume:
	$(GO) test -run 'TestResume|TestWarmEnsemble|TestSnapshotMutants|TestCheckpointMutants' -count=1 -v .
	$(GO) test -run 'TestCache|TestSweepWarmCacheZeroWork|TestUncacheable' -count=1 -v .
	$(GO) test -count=1 ./internal/cache/ ./internal/snapshot/

# Sharded-sweep determinism gate (docs/SHARDING.md): a small sweep split
# three ways across sequential worker invocations and merged must be
# byte-identical to the unsharded run (table and JSON), crash-recovered
# workers must pay only for unfinished cells, incomplete merges must
# fail loudly and typed, and the multi-process store discipline
# (idempotent unlinks, no lost puts, stale-temp sweeping) must hold.
shard-gate:
	$(GO) test -run 'TestShard|TestAssign|TestPlan|TestMerge|TestManifest' -count=1 ./internal/shard/ ./cmd/ev8sweep/ ./internal/experiments/
	$(GO) test -run 'TestCacheCrossProcessSharing' -count=1 .
	$(GO) test -run 'TestTwoStoresOneDirHammer|TestOpenCollectsOrphanedTemps|TestPutEntryWorldReadable|TestReadErrorIsNotAMiss' -count=1 ./internal/cache/

# Serving gate (docs/SERVING.md): the ev8serve daemon end to end under
# the race detector — concurrent tenants streaming NDJSON jobs whose
# results are byte-identical to direct engine runs, admission
# backpressure (typed 429/503), SIGTERM drain that finishes in-flight
# jobs with no goroutine leaks, the per-run expvar isolation registry,
# and the debug-listener close/shutdown regression tests.
serve-gate:
	$(GO) test -race -count=1 ./internal/serve/ ./cmd/ev8serve/
	$(GO) test -race -run 'TestServeDebug|TestConcurrentObserversIsolated|TestAcquireCollision' -count=1 ./internal/stats/live/

# Exhaustive trace-corruption suite: every prefix truncation and every
# single-bit flip of a format-2 stream must surface a typed error.
faultinject:
	$(GO) test -run 'TestFault' -count=1 -v ./internal/trace/faultinject/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compare
	$(GO) run ./examples/custom
	$(GO) run ./examples/smt
	$(GO) run ./examples/frontend

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
