package ev8pred_test

// Adversarial coverage of the snapshot wire format: a deterministic
// mutant suite (every sampled truncation and bit flip of a real snapshot
// must be refused with a typed error, leaving the target predictor
// bit-identically unchanged) and FuzzSnapshotDecode, which drives
// arbitrary bytes through the decoder, every Snapshotter family's
// RestoreState, and sim.Checkpoint.UnmarshalBinary. The invariants under
// fuzz: no panic, every failure wraps snapshot.ErrBadSnapshot, and a
// restore that reports success must reproduce the exact bytes it decoded
// (no silently-wrong restore).

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ev8pred"
	"ev8pred/internal/sim"
	"ev8pred/internal/snapshot"
	"ev8pred/internal/trace/faultinject"
	"ev8pred/internal/workload"
)

// snapshotter is the state-serialization surface under attack.
type snapshotter interface {
	SnapshotState() []byte
	RestoreState([]byte) error
}

// trainedSnapshot runs the family briefly (attribution on, so the stats
// block is populated) and returns the predictor with its state snapshot.
func trainedSnapshot(t testing.TB, c resumeCase) (ev8pred.Predictor, []byte) {
	t.Helper()
	p, err := c.make()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{Mode: c.mode, MaxBranches: 2_000, Collect: true}
	if _, err := ev8pred.RunBenchmark(p, prof, 40_000, opts); err != nil {
		t.Fatal(err)
	}
	snap := p.(snapshotter).SnapshotState()
	if len(snap) == 0 {
		t.Fatalf("%s: empty snapshot", c.name)
	}
	return p, snap
}

// TestSnapshotMutantsNeverRestore is the deterministic mutant sweep: for
// every Snapshotter family, a sampled set of truncations and single-bit
// flips of a trained snapshot must each (a) fail with an error wrapping
// snapshot.ErrBadSnapshot, and (b) leave the receiver untouched — its
// next SnapshotState() is byte-identical to the pre-attempt state.
func TestSnapshotMutantsNeverRestore(t *testing.T) {
	for _, c := range resumeRoster() {
		t.Run(c.name, func(t *testing.T) {
			p, snap := trainedSnapshot(t, c)
			sp := p.(snapshotter)

			check := func(label string, mutant []byte) {
				t.Helper()
				err := sp.RestoreState(mutant)
				if err == nil {
					t.Fatalf("%s: mutant restored without error", label)
				}
				if !errors.Is(err, snapshot.ErrBadSnapshot) {
					t.Fatalf("%s: error %v does not wrap ErrBadSnapshot", label, err)
				}
				if got := sp.SnapshotState(); !bytes.Equal(got, snap) {
					t.Fatalf("%s: failed restore mutated the receiver", label)
				}
			}

			// Sample the mutant space so the large families stay cheap:
			// ~500 truncations and ~500 bit-flip sites each, all eight bit
			// positions rotating across sites (see faultinject.Corpus).
			stride := len(snap) / 500
			if stride < 1 {
				stride = 1
			}
			for i, m := range faultinject.Corpus(snap, stride) {
				check(fmt.Sprintf("mutant[%d]", i), m)
			}
			// The boundary cases the stride can step over.
			check("empty", nil)
			check("truncated-tail", snap[:len(snap)-1])
			last := append([]byte(nil), snap...)
			last[len(last)-1] ^= 0x01
			check("crc-flip", last)

			// The pristine bytes still restore after every refusal.
			if err := sp.RestoreState(snap); err != nil {
				t.Fatalf("pristine snapshot refused after mutant sweep: %v", err)
			}
		})
	}
}

// TestCheckpointMutantsNeverResume applies the same sweep to the composed
// sim.Checkpoint container (predictor state + tracker states + pending
// update ring): every sampled mutant must be refused typed, and the
// destination Checkpoint must be left untouched by the failure.
func TestCheckpointMutantsNeverResume(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("go")
	if err != nil {
		t.Fatal(err)
	}
	p := ev8pred.NewEV8()
	g, err := workload.New(prof, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{Mode: ev8pred.ModeEV8(), MaxBranches: 1_500, UpdateDelay: 8, Warmup: 300}
	_, ck, err := sim.RunCheckpoint(p, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	stride := len(blob) / 500
	if stride < 1 {
		stride = 1
	}
	for i, m := range faultinject.Corpus(blob, stride) {
		var out sim.Checkpoint
		err := out.UnmarshalBinary(m)
		if err == nil {
			t.Fatalf("mutant[%d]: checkpoint decoded without error", i)
		}
		if !errors.Is(err, snapshot.ErrBadSnapshot) {
			t.Fatalf("mutant[%d]: error %v does not wrap ErrBadSnapshot", i, err)
		}
		if out.Records != 0 || out.PredictorState != nil || out.Trackers != nil || out.Pending != nil {
			t.Fatalf("mutant[%d]: failed decode left state in the destination: %+v", i, out)
		}
	}

	var out sim.Checkpoint
	if err := out.UnmarshalBinary(blob); err != nil {
		t.Fatalf("pristine checkpoint refused: %v", err)
	}
}

// FuzzSnapshotDecode feeds arbitrary bytes to every decode surface of the
// snapshot format. Seeds: one trained snapshot per family, a composed
// checkpoint, and a fault-injection sample of each.
func FuzzSnapshotDecode(f *testing.F) {
	var seeds [][]byte
	for _, c := range resumeRoster() {
		_, snap := trainedSnapshot(f, c)
		seeds = append(seeds, snap)
		seeds = append(seeds, faultinject.Corpus(snap, len(snap)/8+1)...)
	}
	prof, err := ev8pred.BenchmarkByName("compress")
	if err != nil {
		f.Fatal(err)
	}
	p, err := ev8pred.NewGshare(1<<10, 10)
	if err != nil {
		f.Fatal(err)
	}
	g, err := workload.New(prof, 20_000)
	if err != nil {
		f.Fatal(err)
	}
	if _, ck, err := sim.RunCheckpoint(p, g, sim.Options{Mode: ev8pred.ModeGhist(), MaxBranches: 500, UpdateDelay: 4}); err != nil {
		f.Fatal(err)
	} else if blob, err := ck.MarshalBinary(); err != nil {
		f.Fatal(err)
	} else {
		seeds = append(seeds, blob)
		seeds = append(seeds, faultinject.Corpus(blob, len(blob)/8+1)...)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw decoder walk: whatever the framing says, reading a rotating
		// sequence of field types must end in a typed error or clean
		// Finish, never a panic or a huge allocation.
		if d, err := snapshot.NewDecoder(data, ""); err == nil {
			for i := 0; ; i++ {
				var ferr error
				switch i % 6 {
				case 0:
					_, ferr = d.Uint64()
				case 1:
					_, ferr = d.Int64()
				case 2:
					_, ferr = d.Bool()
				case 3:
					_, ferr = d.Bytes()
				case 4:
					_, ferr = d.String()
				case 5:
					_, ferr = d.Words()
				}
				if ferr != nil {
					if !errors.Is(ferr, snapshot.ErrBadSnapshot) {
						t.Fatalf("decoder error %v does not wrap ErrBadSnapshot", ferr)
					}
					break
				}
				if d.Remaining() == 0 {
					if ferr := d.Finish(); ferr != nil {
						t.Fatalf("Finish with empty payload: %v", ferr)
					}
					break
				}
			}
		} else if !errors.Is(err, snapshot.ErrBadSnapshot) {
			t.Fatalf("NewDecoder error %v does not wrap ErrBadSnapshot", err)
		}

		// Restore surfaces: a fresh small predictor per family shape that
		// is cheap to build, plus the checkpoint container. Success is
		// only legal if the bytes re-snapshot identically.
		gp, err := ev8pred.NewGshare(1<<10, 10)
		if err != nil {
			t.Fatal(err)
		}
		eg, err := ev8pred.NewEGskew(1<<10, 10, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []snapshotter{gp.(snapshotter), eg.(snapshotter)} {
			if err := target.RestoreState(data); err != nil {
				if !errors.Is(err, snapshot.ErrBadSnapshot) {
					t.Fatalf("RestoreState error %v does not wrap ErrBadSnapshot", err)
				}
			} else if got := target.SnapshotState(); !bytes.Equal(got, data) {
				t.Fatalf("silently-wrong restore: accepted %d bytes, re-snapshots differently", len(data))
			}
		}

		var ck sim.Checkpoint
		if err := ck.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, snapshot.ErrBadSnapshot) {
				t.Fatalf("UnmarshalBinary error %v does not wrap ErrBadSnapshot", err)
			}
		} else if blob, err := ck.MarshalBinary(); err != nil || !bytes.Equal(blob, data) {
			t.Fatalf("checkpoint round trip diverged (err %v)", err)
		}
	})
}
