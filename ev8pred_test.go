package ev8pred_test

import (
	"testing"

	"ev8pred"
)

// The facade tests double as API-stability checks: everything a
// downstream user needs must be reachable from the root package.

func TestFacadeEV8(t *testing.T) {
	p := ev8pred.NewEV8()
	if p.SizeBits() != 352*1024 {
		t.Fatalf("EV8 size = %d bits", p.SizeBits())
	}
	prof, err := ev8pred.BenchmarkByName("li")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ev8pred.RunBenchmark(p, prof, 300_000, ev8pred.Options{Mode: ev8pred.ModeEV8()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Branches == 0 || r.Accuracy() < 0.8 {
		t.Fatalf("implausible result: %v", r)
	}
	if p.BankConflicts() != 0 {
		t.Fatalf("%d bank conflicts", p.BankConflicts())
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if got := len(ev8pred.Benchmarks()); got != 8 {
		t.Fatalf("%d benchmarks", got)
	}
	if _, err := ev8pred.BenchmarkByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeConstructorsValidate(t *testing.T) {
	if _, err := ev8pred.NewGshare(1000, 10); err == nil {
		t.Error("gshare accepted non-power-of-two entries")
	}
	if _, err := ev8pred.NewBimodal(0); err == nil {
		t.Error("bimodal accepted zero entries")
	}
	if _, err := ev8pred.NewYAGS(1024, 1024, 200); err == nil {
		t.Error("yags accepted oversized history")
	}
	if _, err := ev8pred.NewPerceptron(64, 0); err == nil {
		t.Error("perceptron accepted zero history")
	}
}

func TestFacadeHybridComposition(t *testing.T) {
	l, err := ev8pred.NewLocal(1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ev8pred.NewGshare(4096, 12)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ev8pred.NewHybrid(l, g, 1024)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ev8pred.BenchmarkByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ev8pred.RunBenchmark(h, prof, 200_000, ev8pred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy() < 0.85 {
		t.Errorf("tournament hybrid accuracy %.3f too low", r.Accuracy())
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	src, err := ev8pred.NewWorkload(prof, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	records := ev8pred.CollectTrace(src, 0)
	if len(records) == 0 {
		t.Fatal("no records")
	}
	p, err := ev8pred.NewGshare(4096, 10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ev8pred.Run(p, ev8pred.NewSliceSource(records), ev8pred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Branches == 0 {
		t.Fatal("replay produced no branches")
	}
}

func TestFacadeSMT(t *testing.T) {
	prof, err := ev8pred.BenchmarkByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]ev8pred.Source, 2)
	for i := range srcs {
		srcs[i], err = ev8pred.NewWorkload(prof, 100_000)
		if err != nil {
			t.Fatal(err)
		}
	}
	p := ev8pred.NewEV8()
	r, err := ev8pred.Run(p, ev8pred.NewInterleaved(srcs, 500), ev8pred.Options{Mode: ev8pred.ModeEV8()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Branches == 0 {
		t.Fatal("SMT run produced no branches")
	}
	if p.BankConflicts() != 0 {
		t.Fatalf("%d bank conflicts under SMT", p.BankConflicts())
	}
}

func TestFacadeAllConstructors(t *testing.T) {
	// Every public constructor must build a working predictor that can
	// run a short benchmark — the facade's API contract.
	prof, err := ev8pred.BenchmarkByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	constructors := map[string]func() (ev8pred.Predictor, error){
		"bimodal":    func() (ev8pred.Predictor, error) { return ev8pred.NewBimodal(1024) },
		"gshare":     func() (ev8pred.Predictor, error) { return ev8pred.NewGshare(1024, 10) },
		"gas":        func() (ev8pred.Predictor, error) { return ev8pred.NewGAs(6, 5) },
		"egskew":     func() (ev8pred.Predictor, error) { return ev8pred.NewEGskew(1024, 10, true) },
		"bimode":     func() (ev8pred.Predictor, error) { return ev8pred.NewBimode(1024, 256, 10) },
		"yags":       func() (ev8pred.Predictor, error) { return ev8pred.NewYAGS(1024, 1024, 10) },
		"agree":      func() (ev8pred.Predictor, error) { return ev8pred.NewAgree(1024, 1024, 10) },
		"local":      func() (ev8pred.Predictor, error) { return ev8pred.NewLocal(1024, 10) },
		"perceptron": func() (ev8pred.Predictor, error) { return ev8pred.NewPerceptron(256, 12) },
		"dhlf":       func() (ev8pred.Predictor, error) { return ev8pred.NewDHLF(1024, 12, 256) },
		"hybrid": func() (ev8pred.Predictor, error) {
			l, err := ev8pred.NewLocal(256, 8)
			if err != nil {
				return nil, err
			}
			g, err := ev8pred.NewGshare(1024, 10)
			if err != nil {
				return nil, err
			}
			return ev8pred.NewHybrid(l, g, 256)
		},
		"cascade": func() (ev8pred.Predictor, error) {
			backup, err := ev8pred.NewPerceptron(256, 12)
			if err != nil {
				return nil, err
			}
			return ev8pred.NewCascade(ev8pred.NewEV8(), backup, 0)
		},
		"2bcgskew": func() (ev8pred.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config512K()) },
		"ev8-config": func() (ev8pred.Predictor, error) {
			return ev8pred.NewEV8WithConfig(ev8pred.EV8Config{PartialUpdate: true})
		},
	}
	for name, mk := range constructors {
		p, err := mk()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		r, err := ev8pred.RunBenchmark(p, prof, 60_000, ev8pred.Options{Mode: ev8pred.ModeGhist()})
		if err != nil {
			t.Errorf("%s: run: %v", name, err)
			continue
		}
		if r.Branches == 0 || r.Accuracy() < 0.5 {
			t.Errorf("%s: degenerate result %+v", name, r)
		}
		p.Reset()
	}
}
