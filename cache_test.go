package ev8pred_test

// Cache correctness suite for the content-addressed result cache
// (internal/cache + the RunCells integration): a cache hit must be
// byte-identical to recomputation, near-miss keys must miss, corruption
// must fall back to recomputation with a typed error surfaced through the
// Log hook, a warm repeated sweep must re-run with zero simulation work,
// and uncacheable configurations must bypass the store entirely.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ev8pred"
	"ev8pred/internal/cache"
	"ev8pred/internal/core"
	"ev8pred/internal/history"
	"ev8pred/internal/predictor"
	"ev8pred/internal/sim"
	"ev8pred/internal/sweep"
	"ev8pred/internal/workload"
)

// cacheCells builds a small mixed fan-out: two cacheable families over
// two benchmarks, with attribution collection on (so Stats rides the
// cache too).
func cacheCells(t *testing.T) []sim.Cell {
	t.Helper()
	gcc, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	goProf, err := ev8pred.BenchmarkByName("go")
	if err != nil {
		t.Fatal(err)
	}
	gshareFac := func() (predictor.Predictor, error) { return ev8pred.NewGshare(1<<12, 12) }
	coreFac := func() (predictor.Predictor, error) { return ev8pred.New2BcGskew(ev8pred.Config256K()) }
	opts := sim.Options{Mode: ev8pred.ModeGhist(), UpdateDelay: 2, Warmup: 200, Collect: true}
	var cells []sim.Cell
	for _, prof := range []workload.Profile{gcc, goProf} {
		cells = append(cells,
			sim.Cell{Factory: gshareFac, Profile: prof, Opts: opts},
			sim.Cell{Factory: coreFac, Profile: prof, Opts: opts})
	}
	return cells
}

// sameResults asserts element-wise bit-identity of two result slices.
func sameResults(t *testing.T, label string, got, want []sim.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		sameResult(t, label, got[i], want[i])
	}
}

// TestCacheHitMatchesRecompute is the headline differential: a warm run
// answered from the store returns results byte-identical to the cold run
// that computed them — core fields and attribution counters both.
func TestCacheHitMatchesRecompute(t *testing.T) {
	const instr = 60_000
	cells := cacheCells(t)
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := sim.PoolOptions{Workers: 2, Cache: store}
	cold, err := sim.RunCells(context.Background(), cells, instr, pool)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _, puts := store.Counts(); hits != 0 || misses != int64(len(cells)) || puts != int64(len(cells)) {
		t.Fatalf("cold run counts = %d/%d/%d, want 0/%d/%d", hits, misses, puts, len(cells), len(cells))
	}
	warm, err := sim.RunCells(context.Background(), cells, instr, pool)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _, _, _ := store.Counts(); hits != int64(len(cells)) {
		t.Fatalf("warm run scored %d hits, want %d", hits, len(cells))
	}
	sameResults(t, "warm vs cold", warm, cold)

	// And both must match an uncached run.
	bare, err := sim.RunCells(context.Background(), cells, instr, sim.PoolOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "cached vs uncached", cold, bare)
}

// TestCacheNearMissKeys pins key sensitivity: changing any
// result-affecting input — budget, warmup, update delay, information
// vector, Collect, predictor geometry, workload profile — must miss, not
// serve the neighboring entry.
func TestCacheNearMissKeys(t *testing.T) {
	const instr = 30_000
	prof, err := ev8pred.BenchmarkByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	fac := func() (predictor.Predictor, error) { return ev8pred.NewGshare(1<<12, 12) }
	base := sim.Cell{Factory: fac, Profile: prof,
		Opts: sim.Options{Mode: ev8pred.ModeGhist(), UpdateDelay: 2, Warmup: 100}}

	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := sim.PoolOptions{Workers: 1, Cache: store}
	if _, err := sim.RunCells(context.Background(), []sim.Cell{base}, instr, pool); err != nil {
		t.Fatal(err)
	}

	profSeed := prof
	profSeed.Seed++
	delay := base
	delay.Opts.UpdateDelay = 3
	warm := base
	warm.Opts.Warmup = 101
	mode := base
	mode.Opts.Mode = ev8pred.ModeLghist()
	collect := base
	collect.Opts.Collect = true
	geom := base
	geom.Factory = func() (predictor.Predictor, error) { return ev8pred.NewGshare(1<<13, 12) }
	seed := base
	seed.Profile = profSeed

	near := map[string]struct {
		cell  sim.Cell
		instr int64
	}{
		"budget":   {base, instr + 1},
		"delay":    {delay, instr},
		"warmup":   {warm, instr},
		"mode":     {mode, instr},
		"collect":  {collect, instr},
		"geometry": {geom, instr},
		"profile":  {seed, instr},
	}
	for name, n := range near {
		_, missesBefore, _, _ := store.Counts()
		if _, err := sim.RunCells(context.Background(), []sim.Cell{n.cell}, n.instr, pool); err != nil {
			t.Fatal(err)
		}
		hits, missesAfter, _, _ := store.Counts()
		if hits != 0 {
			t.Fatalf("%s: near-miss key served a stale hit", name)
		}
		if missesAfter != missesBefore+1 {
			t.Fatalf("%s: miss count %d -> %d, want +1", name, missesBefore, missesAfter)
		}
	}

	// The original key still hits after all the neighbors were stored.
	if _, err := sim.RunCells(context.Background(), []sim.Cell{base}, instr, pool); err != nil {
		t.Fatal(err)
	}
	if hits, _, _, _ := store.Counts(); hits != 1 {
		t.Fatalf("exact re-run scored %d hits, want 1", hits)
	}
}

// TestCacheCorruptFallback pins the degraded path end to end: a corrupted
// entry is refused with an error surfaced through the pool's Log hook,
// the cell is recomputed to the same bytes, and the bad entry is replaced
// so the next run hits again.
func TestCacheCorruptFallback(t *testing.T) {
	const instr = 30_000
	prof, err := ev8pred.BenchmarkByName("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	cells := []sim.Cell{{
		Factory: func() (predictor.Predictor, error) { return ev8pred.NewGshare(1<<12, 12) },
		Profile: prof,
		Opts:    sim.Options{Mode: ev8pred.ModeGhist(), Warmup: 100, Collect: true},
	}}
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := sim.PoolOptions{Workers: 1, Cache: store}
	cold, err := sim.RunCells(context.Background(), cells, instr, pool)
	if err != nil {
		t.Fatal(err)
	}

	paths, err := filepath.Glob(filepath.Join(dir, "*.ev8c"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("entry files: %v (err %v)", paths, err)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	pool.Log = func(format string, args ...interface{}) {
		logged = append(logged, strings.TrimSpace(format))
	}
	recomputed, err := sim.RunCells(context.Background(), cells, instr, pool)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "recompute after corruption", recomputed, cold)
	if len(logged) == 0 || !strings.Contains(logged[0], "cache") {
		t.Errorf("corruption not surfaced through Log: %q", logged)
	}
	if _, misses, _, puts := store.Counts(); misses != 2 || puts != 2 {
		t.Errorf("counts after corruption = misses %d puts %d, want 2/2 (refused entry recomputed and re-stored)", misses, puts)
	}

	pool.Log = nil
	again, err := sim.RunCells(context.Background(), cells, instr, pool)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "hit after re-store", again, cold)
	if hits, _, _, _ := store.Counts(); hits != 1 {
		t.Errorf("re-stored entry did not hit (hits=%d)", hits)
	}
}

// TestSweepWarmCacheZeroWork is the acceptance gate: a repeated 8-config
// sweep against a warm cache re-runs with zero simulation work — every
// cell a hit, nothing recomputed, nothing stored — and byte-identical
// points.
func TestSweepWarmCacheZeroWork(t *testing.T) {
	const instr = 50_000
	dir := t.TempDir()
	xs := []int{8, 10, 12, 14}
	gcc, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	goProf, err := ev8pred.BenchmarkByName("go")
	if err != nil {
		t.Fatal(err)
	}
	profs := []workload.Profile{gcc, goProf} // 4 values x 2 benchmarks = 8 cells
	factory := func(h int) (predictor.Predictor, error) { return ev8pred.NewGshare(1<<12, h) }
	opts := sim.Options{Mode: ev8pred.ModeGhist(), Warmup: 200}

	run := func(store *cache.Store) []sweep.Point {
		t.Helper()
		pts, err := sweep.RunPool(factory, xs, profs, instr, opts,
			sim.PoolOptions{Workers: 2, Ensemble: sim.EnsembleOn, Cache: store})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}

	coldStore, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := run(coldStore)
	if hits, misses, _, puts := coldStore.Counts(); hits != 0 || misses != 8 || puts != 8 {
		t.Fatalf("cold sweep counts = %d/%d/%d, want 0/8/8", hits, misses, puts)
	}

	// A fresh Store over the same directory: its counters start at zero,
	// so they measure exactly the warm re-run.
	warmStore, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := run(warmStore)
	hits, misses, readErrs, puts := warmStore.Counts()
	if hits != 8 || misses != 0 || readErrs != 0 || puts != 0 {
		t.Fatalf("warm sweep counts = %d/%d/%d, want 8/0/0 (zero simulation work)", hits, misses, puts)
	}
	for i := range cold {
		if cold[i].X != warm[i].X || cold[i].Mean != warm[i].Mean {
			t.Fatalf("point %d diverged: cold %+v warm %+v", i, cold[i], warm[i])
		}
		sameResults(t, "warm sweep point", warm[i].Results, cold[i].Results)
	}
}

// TestCacheCrossProcessSharing is the multi-process differential: two
// independent Store handles over ONE directory (the two-process topology
// sharded sweeps run in, docs/SHARDING.md) race the same 8-cell sweep
// concurrently. Both must finish with points byte-identical to a serial
// uncached run, neither may observe a corrupt or unreadable entry, and
// no Put may be lost — a warm re-run afterwards answers every cell from
// the store.
func TestCacheCrossProcessSharing(t *testing.T) {
	const instr = 50_000
	dir := t.TempDir()
	xs := []int{8, 10, 12, 14}
	gcc, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	goProf, err := ev8pred.BenchmarkByName("go")
	if err != nil {
		t.Fatal(err)
	}
	profs := []workload.Profile{gcc, goProf} // 4 values x 2 benchmarks = 8 cells
	factory := func(h int) (predictor.Predictor, error) { return ev8pred.NewGshare(1<<12, h) }
	opts := sim.Options{Mode: ev8pred.ModeGhist(), Warmup: 200}

	serial, err := sweep.RunPool(factory, xs, profs, instr, opts, sim.PoolOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const procs = 2
	stores := make([]*cache.Store, procs)
	points := make([][]sweep.Point, procs)
	logs := make([][]string, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		stores[p], err = cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var mu sync.Mutex
			pool := sim.PoolOptions{Workers: 2, Cache: stores[p], Log: func(format string, args ...interface{}) {
				mu.Lock()
				logs[p] = append(logs[p], fmt.Sprintf(format, args...))
				mu.Unlock()
			}}
			points[p], errs[p] = sweep.RunPool(factory, xs, profs, instr, opts, pool)
		}(p)
	}
	wg.Wait()

	for p := 0; p < procs; p++ {
		if errs[p] != nil {
			t.Fatalf("store %d sweep: %v", p, errs[p])
		}
		for i := range serial {
			if points[p][i].X != serial[i].X || points[p][i].Mean != serial[i].Mean {
				t.Fatalf("store %d point %d diverged: %+v vs serial %+v", p, i, points[p][i], serial[i])
			}
			sameResults(t, fmt.Sprintf("store %d point %d", p, i), points[p][i].Results, serial[i].Results)
		}
		hits, misses, readErrs, puts := stores[p].Counts()
		if readErrs != 0 {
			t.Errorf("store %d observed %d read errors racing a sibling", p, readErrs)
		}
		if hits+misses != 8 || puts != misses {
			t.Errorf("store %d counts = %d hits, %d misses, %d puts; want hits+misses=8 and one put per miss", p, hits, misses, puts)
		}
		for _, line := range logs[p] {
			t.Errorf("store %d surfaced a diagnostic racing a sibling: %q", p, line)
		}
	}

	// No lost Puts: a fresh handle answers the whole sweep from the store.
	warmStore, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sweep.RunPool(factory, xs, profs, instr, opts, sim.PoolOptions{Workers: 2, Cache: warmStore})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, readErrs, puts := warmStore.Counts(); hits != 8 || misses != 0 || readErrs != 0 || puts != 0 {
		t.Errorf("warm re-run counts = %d/%d/%d/%d, want 8/0/0/0 (a concurrent Put was lost)", hits, misses, readErrs, puts)
	}
	for i := range serial {
		sameResults(t, fmt.Sprintf("warm point %d", i), warm[i].Results, serial[i].Results)
	}
}

// TestUncacheableCellsBypassStore pins the opt-out: a 2Bc-gskew core with
// caller-supplied index functions reports no canonical key, so its cells
// simulate unconditionally and never touch the store — correct results,
// empty cache.
func TestUncacheableCellsBypassStore(t *testing.T) {
	const instr = 30_000
	prof, err := ev8pred.BenchmarkByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	custom := func() (predictor.Predictor, error) {
		cfg := core.Config256K()
		std := core.DefaultIndexSet(cfg)
		cfg.Indexes = func(info *history.Info) [core.NumBanks]uint64 { return std(info) }
		cfg.Name = "2bcg-custom-idx"
		return core.New(cfg)
	}
	cells := []sim.Cell{{Factory: custom, Profile: prof, Opts: sim.Options{Mode: ev8pred.ModeGhist()}}}
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := sim.PoolOptions{Workers: 1, Cache: store}
	first, err := sim.RunCells(context.Background(), cells, instr, pool)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.RunCells(context.Background(), cells, instr, pool)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "uncacheable rerun", second, first)
	if hits, misses, readErrs, puts := store.Counts(); hits != 0 || misses != 0 || readErrs != 0 || puts != 0 {
		t.Errorf("uncacheable cells touched the store: %d/%d/%d/%d", hits, misses, readErrs, puts)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*")); len(files) != 0 {
		t.Errorf("store not empty: %v", files)
	}
}
