package ev8pred_test

// Table-driven warmup sweep: for every predictor family, warmup windows
// inside, at, and far beyond the stream length must all yield Results
// that pass Validate and keep Mispredicts <= Branches <= Instructions.
// The beyond-stream cases pin the boundary fix in sim.Run's warmup clamp:
// when the stream ends at or before the warmup boundary, zero branches
// were measured and the Result must say so.

import (
	"testing"

	"ev8pred"
)

func TestWarmupSweepAllPredictors(t *testing.T) {
	const instr = 60_000
	prof, err := ev8pred.BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	// Establish the stream's branch count once so the sweep can place
	// warmup values relative to it.
	bp, err := ev8pred.NewBimodal(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ev8pred.RunBenchmark(bp, prof, instr,
		ev8pred.Options{Mode: ev8pred.ModeGhist()})
	if err != nil {
		t.Fatal(err)
	}
	total := baseline.Branches
	if total == 0 {
		t.Fatal("baseline run saw no branches")
	}
	warmups := []int64{0, 1, 100, total / 2, total - 1, total, total + 1, 10 * total}

	for _, tc := range fusedRoster() {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range warmups {
				p, err := tc.make()
				if err != nil {
					t.Fatal(err)
				}
				r, err := ev8pred.RunBenchmark(p, prof, instr,
					ev8pred.Options{Mode: tc.mode, Warmup: w})
				if err != nil {
					t.Fatalf("warmup=%d: %v", w, err)
				}
				if err := r.Validate(); err != nil {
					t.Errorf("warmup=%d: %v", w, err)
				}
				if r.Mispredicts > r.Branches || r.Branches > r.Instructions {
					t.Errorf("warmup=%d: ordering violated: %+v", w, r)
				}
				if w >= total && r.Branches != 0 {
					t.Errorf("warmup=%d >= stream length %d: measured %d branches, want 0",
						w, total, r.Branches)
				}
				if w < total && r.Branches != total-w {
					t.Errorf("warmup=%d: measured %d branches, want %d", w, r.Branches, total-w)
				}
			}
		})
	}
}
